//! Monte-Carlo estimation of logical error rates.
//!
//! Two kinds of experiment:
//!
//! - [`ConcatMc`] runs the *compiled* fault-tolerant programs of
//!   [`rft_core::concat`] — the non-local scheme of §2 at any concatenation
//!   level — for one or more consecutive cycles;
//! - [`estimate_cycle_error`] runs a single extended rectangle described by
//!   a [`CycleSpec`] (used for the 2D/1D local cycles of §3).
//!
//! Trials are farmed across threads with independently seeded `SmallRng`s,
//! so results are reproducible for a given `(seed, threads)` pair.

use crate::stats::ErrorEstimate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rft_core::concat::{FtBuilder, FtProgram};
use rft_core::ftcheck::CycleSpec;
use rft_revsim::circuit::Circuit;
use rft_revsim::exec::run_noisy;
use rft_revsim::gate::Gate;
use rft_revsim::noise::NoiseModel;
use rft_revsim::op::Op;
use rft_revsim::permutation::Permutation;
use rft_revsim::state::BitState;

/// Runs `trials` independent boolean trials across `threads` OS threads
/// and counts `true` outcomes. Each thread gets its own deterministic RNG.
pub fn parallel_failures<F>(trials: u64, seed: u64, threads: usize, trial: F) -> u64
where
    F: Fn(&mut SmallRng) -> bool + Sync,
{
    let threads = threads.max(1);
    let per = trials / threads as u64;
    let extra = trials % threads as u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let n = per + u64::from((t as u64) < extra);
            let trial = &trial;
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1)));
                let mut failures = 0u64;
                for _ in 0..n {
                    if trial(&mut rng) {
                        failures += 1;
                    }
                }
                failures
            }));
        }
        handles.into_iter().map(|h| h.join().expect("trial thread panicked")).sum()
    })
}

/// Monte-Carlo harness for concatenated (non-local) fault-tolerant gates.
#[derive(Debug)]
pub struct ConcatMc {
    program: FtProgram,
    ideal: Permutation,
    cycles: usize,
}

impl ConcatMc {
    /// Compiles `cycles` consecutive applications of `gate` (a gate on
    /// logical wires) at concatenation `level`.
    ///
    /// # Panics
    ///
    /// Panics if the gate's wires are invalid for three logical wires or
    /// the level exceeds [`FtBuilder::MAX_LEVEL`].
    pub fn new(level: u8, gate: Gate, cycles: usize) -> Self {
        assert!(cycles > 0, "need at least one cycle");
        let n_logical = gate.support().max_index() + 1;
        let mut logical = Circuit::new(n_logical);
        for _ in 0..cycles {
            logical.push(Op::Gate(gate));
        }
        let ideal = Permutation::of_circuit(&logical).expect("small logical circuit");
        let program = FtBuilder::compile(level, &logical).expect("gate-only logical circuit");
        ConcatMc { program, ideal, cycles }
    }

    /// The compiled program.
    pub fn program(&self) -> &FtProgram {
        &self.program
    }

    /// Number of cycles per trial.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Estimates the probability that a full trial (all cycles) ends with
    /// any logical bit decoded incorrectly, over random logical inputs.
    pub fn estimate<N>(&self, noise: &N, trials: u64, seed: u64, threads: usize) -> ErrorEstimate
    where
        N: NoiseModel + Sync,
    {
        let n_logical = self.program.n_logical();
        let failures = parallel_failures(trials, seed, threads, |rng| {
            let input = rng.random_range(0..(1u64 << n_logical));
            let logical_in = BitState::from_u64(input, n_logical);
            let mut state = self.program.encode(&logical_in);
            run_noisy(self.program.circuit(), &mut state, noise, rng);
            let decoded = self.program.decode(&state).to_u64();
            decoded != self.ideal.apply(input)
        });
        ErrorEstimate::from_counts(failures, trials)
    }

    /// Per-cycle logical error rate derived from [`ConcatMc::estimate`].
    pub fn estimate_per_cycle<N>(
        &self,
        noise: &N,
        trials: u64,
        seed: u64,
        threads: usize,
    ) -> (ErrorEstimate, f64)
    where
        N: NoiseModel + Sync,
    {
        let est = self.estimate(noise, trials, seed, threads);
        let per_cycle = est.per_cycle(self.cycles);
        (est, per_cycle)
    }
}

/// Estimates the logical error probability of one extended rectangle (a
/// [`CycleSpec`]): encode a random input, run the cycle under `noise`,
/// majority-decode the outputs and compare with the ideal function.
pub fn estimate_cycle_error<N>(
    spec: &CycleSpec,
    noise: &N,
    trials: u64,
    seed: u64,
    threads: usize,
) -> ErrorEstimate
where
    N: NoiseModel + Sync,
{
    let k = spec.n_logical();
    let failures = parallel_failures(trials, seed, threads, |rng| {
        let input = rng.random_range(0..(1u64 << k));
        let mut state = spec.encode_input(input);
        run_noisy(spec.circuit(), &mut state, noise, rng);
        spec.decode_output(&state) != spec.logical().apply(input)
    });
    ErrorEstimate::from_counts(failures, trials)
}

/// Estimates the *unprotected* error rate of `cycles` physical gates — the
/// `1 − (1−g)^T ≈ gT` baseline the paper compares against.
pub fn unprotected_error(g: f64, gates: usize) -> f64 {
    1.0 - (1.0 - g).powi(gates as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::noise::{NoNoise, UniformNoise};
    use rft_revsim::wire::w;

    fn toffoli() -> Gate {
        Gate::Toffoli { controls: [w(0), w(1)], target: w(2) }
    }

    #[test]
    fn parallel_failures_is_deterministic() {
        let f = |rng: &mut SmallRng| rng.random::<f64>() < 0.3;
        let a = parallel_failures(2000, 42, 4, f);
        let b = parallel_failures(2000, 42, 4, f);
        assert_eq!(a, b);
        // Roughly 30%.
        assert!((a as f64 - 600.0).abs() < 120.0, "got {a}");
    }

    #[test]
    fn different_seeds_differ() {
        let f = |rng: &mut SmallRng| rng.random::<f64>() < 0.5;
        assert_ne!(parallel_failures(1000, 1, 2, f), parallel_failures(1000, 2, 2, f));
    }

    #[test]
    fn noiseless_concat_never_fails() {
        let mc = ConcatMc::new(1, toffoli(), 3);
        let est = mc.estimate(&NoNoise, 200, 7, 2);
        assert_eq!(est.failures, 0);
    }

    #[test]
    fn heavy_noise_fails_often() {
        let mc = ConcatMc::new(1, toffoli(), 1);
        let est = mc.estimate(&UniformNoise::new(0.25), 400, 7, 2);
        assert!(est.rate > 0.2, "rate {} too low for heavy noise", est.rate);
    }

    #[test]
    fn below_threshold_level_one_beats_unprotected() {
        // g = ρ/4: the FT cycle should fail far less often than the 27
        // unprotected gates it replaces.
        let g = 1.0 / 432.0;
        let mc = ConcatMc::new(1, toffoli(), 1);
        let est = mc.estimate(&UniformNoise::new(g), 20_000, 11, 4);
        let baseline = unprotected_error(g, 27);
        assert!(
            est.rate < baseline,
            "protected {} not below unprotected {}",
            est.rate,
            baseline
        );
    }

    #[test]
    fn cycle_spec_mc_runs() {
        use rft_core::recovery::{recovery_circuit, DATA_IN, DATA_OUT};
        let spec = CycleSpec::new(
            recovery_circuit(),
            vec![DATA_IN],
            vec![DATA_OUT],
            Permutation::identity(1),
        );
        let est = estimate_cycle_error(&spec, &NoNoise, 100, 3, 2);
        assert_eq!(est.failures, 0);
        let noisy = estimate_cycle_error(&spec, &UniformNoise::new(0.3), 400, 3, 2);
        assert!(noisy.failures > 0);
    }

    #[test]
    fn unprotected_error_matches_formula() {
        assert!((unprotected_error(0.01, 100) - (1.0 - 0.99f64.powi(100))).abs() < 1e-15);
        assert_eq!(unprotected_error(0.0, 1000), 0.0);
    }
}
