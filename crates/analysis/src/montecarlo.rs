//! Monte-Carlo estimation of logical error rates.
//!
//! Two kinds of experiment:
//!
//! - [`ConcatMc`] runs the *compiled* fault-tolerant programs of
//!   [`rft_core::concat`] — the non-local scheme of §2 at any concatenation
//!   level — for one or more consecutive cycles;
//! - [`estimate_cycle_error`] runs a single extended rectangle described by
//!   a [`CycleSpec`] (used for the 2D/1D local cycles of §3).
//!
//! Trials are farmed across threads with independently seeded `SmallRng`s,
//! so results are reproducible for a given `(seed, threads)` pair.
//!
//! Both experiments have a **batch fast path** built on
//! [`rft_revsim::batch`]: trials are packed 64 per machine word
//! ([`parallel_failure_words`]), gates execute as branch-free bit-plane
//! kernels, and decoding is a bitwise majority — a 10–50× throughput gain
//! over the scalar path. [`ConcatMc::estimate`] and
//! [`estimate_cycle_error`] route large runs through it automatically
//! (above [`BATCH_TRIAL_THRESHOLD`] trials); the scalar path stays
//! available as [`ConcatMc::estimate_scalar`] /
//! [`estimate_cycle_error_scalar`] and is held equivalent by the tests in
//! `tests/batch_stats.rs`.

use crate::stats::ErrorEstimate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rft_core::concat::{FtBuilder, FtProgram};
use rft_core::ftcheck::CycleSpec;
use rft_revsim::batch::{run_noisy_batch_with, BatchState, CompiledNoise};
use rft_revsim::circuit::Circuit;
use rft_revsim::exec::run_noisy;
use rft_revsim::gate::Gate;
use rft_revsim::noise::NoiseModel;
use rft_revsim::op::Op;
use rft_revsim::permutation::Permutation;
use rft_revsim::state::BitState;

/// Minimum trial count for which the batch (64-lanes-per-word) fast path
/// is used by the auto-dispatching estimators.
pub const BATCH_TRIAL_THRESHOLD: u64 = 256;

/// Runs `trials` independent boolean trials across `threads` OS threads
/// and counts `true` outcomes. Each thread gets its own deterministic RNG.
pub fn parallel_failures<F>(trials: u64, seed: u64, threads: usize, trial: F) -> u64
where
    F: Fn(&mut SmallRng) -> bool + Sync,
{
    let threads = threads.max(1);
    let per = trials / threads as u64;
    let extra = trials % threads as u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let n = per + u64::from((t as u64) < extra);
            let trial = &trial;
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1)),
                );
                let mut failures = 0u64;
                for _ in 0..n {
                    if trial(&mut rng) {
                        failures += 1;
                    }
                }
                failures
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("trial thread panicked"))
            .sum()
    })
}

/// Batch counterpart of [`parallel_failures`]: runs `trials` trials packed
/// 64 per word across `threads` OS threads. `word_trial` executes one
/// 64-lane word and returns the mask of *failed* lanes; lanes beyond
/// `trials` in the final word are ignored.
///
/// Deterministic for a given `(seed, threads)` pair, like the scalar
/// version (the streams differ between the two).
pub fn parallel_failure_words<F>(trials: u64, seed: u64, threads: usize, word_trial: F) -> u64
where
    F: Fn(&mut SmallRng) -> u64 + Sync,
{
    let threads = threads.max(1);
    let total_words = trials.div_ceil(64);
    let per = total_words / threads as u64;
    let extra = total_words % threads as u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut first_word = 0u64;
        for t in 0..threads {
            let n_words = per + u64::from((t as u64) < extra);
            let start = first_word;
            first_word += n_words;
            let word_trial = &word_trial;
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1)),
                );
                let mut failures = 0u64;
                for w in start..start + n_words {
                    let mask = word_trial(&mut rng);
                    // The final word may cover fewer than 64 real trials.
                    let live = trials - w * 64;
                    let valid = if live >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << live) - 1
                    };
                    failures += (mask & valid).count_ones() as u64;
                }
                failures
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("trial thread panicked"))
            .sum()
    })
}

/// Reads lane `lane`'s logical value out of per-wire plane words
/// (bit `i` of the result = bit `lane` of `planes[i]`).
#[inline]
fn lane_value(planes: &[u64], lane: usize) -> u64 {
    planes
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &plane)| acc | (((plane >> lane) & 1) << i))
}

/// Monte-Carlo harness for concatenated (non-local) fault-tolerant gates.
#[derive(Debug)]
pub struct ConcatMc {
    program: FtProgram,
    ideal: Permutation,
    cycles: usize,
}

impl ConcatMc {
    /// Compiles `cycles` consecutive applications of `gate` (a gate on
    /// logical wires) at concatenation `level`.
    ///
    /// # Panics
    ///
    /// Panics if the gate's wires are invalid for three logical wires or
    /// the level exceeds [`FtBuilder::MAX_LEVEL`].
    pub fn new(level: u8, gate: Gate, cycles: usize) -> Self {
        assert!(cycles > 0, "need at least one cycle");
        let n_logical = gate.support().max_index() + 1;
        let mut logical = Circuit::new(n_logical);
        for _ in 0..cycles {
            logical.push(Op::Gate(gate));
        }
        let ideal = Permutation::of_circuit(&logical).expect("small logical circuit");
        let program = FtBuilder::compile(level, &logical).expect("gate-only logical circuit");
        ConcatMc {
            program,
            ideal,
            cycles,
        }
    }

    /// The compiled program.
    pub fn program(&self) -> &FtProgram {
        &self.program
    }

    /// Number of cycles per trial.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Estimates the probability that a full trial (all cycles) ends with
    /// any logical bit decoded incorrectly, over random logical inputs.
    ///
    /// Dispatches to the bit-parallel [`ConcatMc::estimate_batch`] path
    /// when `trials ≥` [`BATCH_TRIAL_THRESHOLD`], and to the scalar
    /// [`ConcatMc::estimate_scalar`] path otherwise.
    pub fn estimate<N>(&self, noise: &N, trials: u64, seed: u64, threads: usize) -> ErrorEstimate
    where
        N: NoiseModel + Sync,
    {
        if trials >= BATCH_TRIAL_THRESHOLD {
            self.estimate_batch(noise, trials, seed, threads)
        } else {
            self.estimate_scalar(noise, trials, seed, threads)
        }
    }

    /// Scalar (one-trial-at-a-time) estimator — the original Monte-Carlo
    /// path, kept as the semantic reference for the batch engine.
    pub fn estimate_scalar<N>(
        &self,
        noise: &N,
        trials: u64,
        seed: u64,
        threads: usize,
    ) -> ErrorEstimate
    where
        N: NoiseModel + Sync,
    {
        let n_logical = self.program.n_logical();
        let failures = parallel_failures(trials, seed, threads, |rng| {
            let input = rng.random_range(0..(1u64 << n_logical));
            let logical_in = BitState::from_u64(input, n_logical);
            let mut state = self.program.encode(&logical_in);
            run_noisy(self.program.circuit(), &mut state, noise, rng);
            let decoded = self.program.decode(&state).to_u64();
            decoded != self.ideal.apply(input)
        });
        ErrorEstimate::from_counts(failures, trials)
    }

    /// Bit-parallel estimator: 64 trials per word per thread, on the
    /// [`rft_revsim::batch`] engine. Statistically equivalent to
    /// [`ConcatMc::estimate_scalar`] (different RNG streams).
    pub fn estimate_batch<N>(
        &self,
        noise: &N,
        trials: u64,
        seed: u64,
        threads: usize,
    ) -> ErrorEstimate
    where
        N: NoiseModel + Sync,
    {
        let circuit = self.program.circuit();
        let compiled = CompiledNoise::compile(circuit, noise);
        let n_logical = self.program.n_logical();
        let n_physical = self.program.n_physical();
        let failures = parallel_failure_words(trials, seed, threads, |rng| {
            // One random plane word per logical wire: every lane gets an
            // independent uniform logical input.
            let logical: Vec<u64> = (0..n_logical).map(|_| rng.random::<u64>()).collect();
            let mut batch = BatchState::zeros(n_physical, 1);
            self.program.encode_word(&mut batch, 0, &logical);
            run_noisy_batch_with(circuit, &mut batch, &compiled, rng);
            let decoded = self.program.decode_word(&batch, 0);
            let mut failed = 0u64;
            for lane in 0..64 {
                let input = lane_value(&logical, lane);
                let output = lane_value(&decoded, lane);
                if output != self.ideal.apply(input) {
                    failed |= 1u64 << lane;
                }
            }
            failed
        });
        ErrorEstimate::from_counts(failures, trials)
    }

    /// Per-cycle logical error rate derived from [`ConcatMc::estimate`].
    pub fn estimate_per_cycle<N>(
        &self,
        noise: &N,
        trials: u64,
        seed: u64,
        threads: usize,
    ) -> (ErrorEstimate, f64)
    where
        N: NoiseModel + Sync,
    {
        let est = self.estimate(noise, trials, seed, threads);
        let per_cycle = est.per_cycle(self.cycles);
        (est, per_cycle)
    }
}

/// Estimates the logical error probability of one extended rectangle (a
/// [`CycleSpec`]): encode a random input, run the cycle under `noise`,
/// majority-decode the outputs and compare with the ideal function.
///
/// Dispatches to [`estimate_cycle_error_batch`] when `trials ≥`
/// [`BATCH_TRIAL_THRESHOLD`], and to [`estimate_cycle_error_scalar`]
/// otherwise.
pub fn estimate_cycle_error<N>(
    spec: &CycleSpec,
    noise: &N,
    trials: u64,
    seed: u64,
    threads: usize,
) -> ErrorEstimate
where
    N: NoiseModel + Sync,
{
    if trials >= BATCH_TRIAL_THRESHOLD {
        estimate_cycle_error_batch(spec, noise, trials, seed, threads)
    } else {
        estimate_cycle_error_scalar(spec, noise, trials, seed, threads)
    }
}

/// Scalar (one-trial-at-a-time) cycle estimator — the original path, kept
/// as the semantic reference for the batch engine.
pub fn estimate_cycle_error_scalar<N>(
    spec: &CycleSpec,
    noise: &N,
    trials: u64,
    seed: u64,
    threads: usize,
) -> ErrorEstimate
where
    N: NoiseModel + Sync,
{
    let k = spec.n_logical();
    let failures = parallel_failures(trials, seed, threads, |rng| {
        let input = rng.random_range(0..(1u64 << k));
        let mut state = spec.encode_input(input);
        run_noisy(spec.circuit(), &mut state, noise, rng);
        spec.decode_output(&state) != spec.logical().apply(input)
    });
    ErrorEstimate::from_counts(failures, trials)
}

/// Bit-parallel cycle estimator: 64 trials per word per thread.
/// Statistically equivalent to [`estimate_cycle_error_scalar`] (different
/// RNG streams).
pub fn estimate_cycle_error_batch<N>(
    spec: &CycleSpec,
    noise: &N,
    trials: u64,
    seed: u64,
    threads: usize,
) -> ErrorEstimate
where
    N: NoiseModel + Sync,
{
    let circuit = spec.circuit();
    let compiled = CompiledNoise::compile(circuit, noise);
    let k = spec.n_logical();
    let n_wires = circuit.n_wires();
    let failures = parallel_failure_words(trials, seed, threads, |rng| {
        let logical: Vec<u64> = (0..k).map(|_| rng.random::<u64>()).collect();
        let mut batch = BatchState::zeros(n_wires, 1);
        spec.encode_input_word(&mut batch, 0, &logical);
        run_noisy_batch_with(circuit, &mut batch, &compiled, rng);
        let decoded = spec.decode_output_word(&batch, 0);
        let mut failed = 0u64;
        for lane in 0..64 {
            let input = lane_value(&logical, lane);
            let output = lane_value(&decoded, lane);
            if output != spec.logical().apply(input) {
                failed |= 1u64 << lane;
            }
        }
        failed
    });
    ErrorEstimate::from_counts(failures, trials)
}

/// Estimates the *unprotected* error rate of `cycles` physical gates — the
/// `1 − (1−g)^T ≈ gT` baseline the paper compares against.
pub fn unprotected_error(g: f64, gates: usize) -> f64 {
    1.0 - (1.0 - g).powi(gates as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::noise::{NoNoise, UniformNoise};
    use rft_revsim::wire::w;

    fn toffoli() -> Gate {
        Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        }
    }

    #[test]
    fn parallel_failures_is_deterministic() {
        let f = |rng: &mut SmallRng| rng.random::<f64>() < 0.3;
        let a = parallel_failures(2000, 42, 4, f);
        let b = parallel_failures(2000, 42, 4, f);
        assert_eq!(a, b);
        // Roughly 30%.
        assert!((a as f64 - 600.0).abs() < 120.0, "got {a}");
    }

    #[test]
    fn different_seeds_differ() {
        let f = |rng: &mut SmallRng| rng.random::<f64>() < 0.5;
        assert_ne!(
            parallel_failures(1000, 1, 2, f),
            parallel_failures(1000, 2, 2, f)
        );
    }

    #[test]
    fn noiseless_concat_never_fails() {
        let mc = ConcatMc::new(1, toffoli(), 3);
        let est = mc.estimate(&NoNoise, 200, 7, 2);
        assert_eq!(est.failures, 0);
    }

    #[test]
    fn heavy_noise_fails_often() {
        let mc = ConcatMc::new(1, toffoli(), 1);
        let est = mc.estimate(&UniformNoise::new(0.25), 400, 7, 2);
        assert!(est.rate > 0.2, "rate {} too low for heavy noise", est.rate);
    }

    #[test]
    fn below_threshold_level_one_beats_unprotected() {
        // g = ρ/4: the FT cycle should fail far less often than the 27
        // unprotected gates it replaces.
        let g = 1.0 / 432.0;
        let mc = ConcatMc::new(1, toffoli(), 1);
        let est = mc.estimate(&UniformNoise::new(g), 20_000, 11, 4);
        let baseline = unprotected_error(g, 27);
        assert!(
            est.rate < baseline,
            "protected {} not below unprotected {}",
            est.rate,
            baseline
        );
    }

    #[test]
    fn cycle_spec_mc_runs() {
        use rft_core::recovery::{recovery_circuit, DATA_IN, DATA_OUT};
        let spec = CycleSpec::new(
            recovery_circuit(),
            vec![DATA_IN],
            vec![DATA_OUT],
            Permutation::identity(1),
        );
        let est = estimate_cycle_error(&spec, &NoNoise, 100, 3, 2);
        assert_eq!(est.failures, 0);
        let noisy = estimate_cycle_error(&spec, &UniformNoise::new(0.3), 400, 3, 2);
        assert!(noisy.failures > 0);
    }

    #[test]
    fn parallel_failure_words_counts_partial_final_word() {
        // Every lane "fails": the count must equal the exact trial count,
        // not the rounded-up word count.
        let all_fail = |_rng: &mut SmallRng| u64::MAX;
        assert_eq!(parallel_failure_words(100, 1, 3, all_fail), 100);
        assert_eq!(parallel_failure_words(64, 1, 2, all_fail), 64);
        assert_eq!(parallel_failure_words(65, 1, 2, all_fail), 65);
    }

    #[test]
    fn parallel_failure_words_is_deterministic() {
        let f = |rng: &mut SmallRng| rng.random::<u64>() & rng.random::<u64>();
        let a = parallel_failure_words(10_000, 7, 4, f);
        let b = parallel_failure_words(10_000, 7, 4, f);
        assert_eq!(a, b);
        // Each lane fails with probability 1/4.
        assert!((a as f64 - 2_500.0).abs() < 300.0, "got {a}");
    }

    #[test]
    fn batch_noiseless_concat_never_fails() {
        let mc = ConcatMc::new(1, toffoli(), 2);
        let est = mc.estimate_batch(&NoNoise, 1_000, 7, 2);
        assert_eq!(est.failures, 0);
    }

    #[test]
    fn batch_and_scalar_estimates_agree_statistically() {
        // Same model, disjoint RNG streams: the two estimators must land
        // within each other's 95% Wilson intervals (generous overlap
        // check).
        let mc = ConcatMc::new(1, toffoli(), 1);
        let noise = UniformNoise::new(1.0 / 80.0);
        let scalar = mc.estimate_scalar(&noise, 6_000, 11, 4);
        let batch = mc.estimate_batch(&noise, 6_000, 13, 4);
        assert!(
            batch.low <= scalar.high && scalar.low <= batch.high,
            "batch {:?} vs scalar {:?}",
            batch,
            scalar
        );
    }

    #[test]
    fn estimate_dispatches_by_trial_count() {
        // Both branches must produce sane estimates; the dispatch itself
        // is an implementation detail, so just exercise the two regimes.
        let mc = ConcatMc::new(1, toffoli(), 1);
        let noise = UniformNoise::new(0.2);
        let small = mc.estimate(&noise, BATCH_TRIAL_THRESHOLD - 1, 3, 2);
        let large = mc.estimate(&noise, BATCH_TRIAL_THRESHOLD * 4, 3, 2);
        assert!(small.rate > 0.0 && large.rate > 0.0);
    }

    #[test]
    fn batch_cycle_spec_mc_runs() {
        use rft_core::recovery::{recovery_circuit, DATA_IN, DATA_OUT};
        let spec = CycleSpec::new(
            recovery_circuit(),
            vec![DATA_IN],
            vec![DATA_OUT],
            Permutation::identity(1),
        );
        let est = estimate_cycle_error_batch(&spec, &NoNoise, 500, 3, 2);
        assert_eq!(est.failures, 0);
        let noisy = estimate_cycle_error_batch(&spec, &UniformNoise::new(0.3), 1_000, 3, 2);
        assert!(noisy.failures > 0);
        let scalar = estimate_cycle_error_scalar(&spec, &UniformNoise::new(0.3), 1_000, 5, 2);
        assert!(
            noisy.low <= scalar.high && scalar.low <= noisy.high,
            "batch {:?} vs scalar {:?}",
            noisy,
            scalar
        );
    }

    #[test]
    fn unprotected_error_matches_formula() {
        assert!((unprotected_error(0.01, 100) - (1.0 - 0.99f64.powi(100))).abs() < 1e-15);
        assert_eq!(unprotected_error(0.0, 1000), 0.0);
    }
}
