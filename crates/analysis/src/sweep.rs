//! Parameter sweeps and pseudo-threshold estimation.
//!
//! §2.2 defines the threshold as the largest `g` for which error
//! correction still helps (`g_logical < g`). Monte-Carlo estimates are
//! noisy, so the crossing is located by sweeping `g` on a log grid and
//! interpolating the sign change of `log(p̂(g)) − log(target(g))`.

use crate::stats::ErrorEstimate;
use serde::{Deserialize, Serialize};

/// One point of a `g` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Physical gate error rate.
    pub g: f64,
    /// Estimated logical error rate at `g`.
    pub estimate: ErrorEstimate,
}

/// A logarithmically spaced grid of `n` rates from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `n >= 2`.
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(n >= 2, "need at least two grid points");
    let step = (hi / lo).ln() / (n - 1) as f64;
    (0..n).map(|i| lo * (step * i as f64).exp()).collect()
}

/// Runs `estimator` over each `g` in `grid`.
pub fn sweep<F>(grid: &[f64], estimator: F) -> Vec<SweepPoint>
where
    F: Fn(f64) -> ErrorEstimate,
{
    grid.iter()
        .map(|&g| SweepPoint {
            g,
            estimate: estimator(g),
        })
        .collect()
}

/// Locates the crossing `p̂(g) = target(g)` by log-linear interpolation
/// between the last point with `p̂ < target` and the first with
/// `p̂ ≥ target`. Returns `None` if the sweep never crosses.
///
/// Points with a zero rate are skipped (no log estimate). The filter is
/// on the rate, not the failure count, because stratified rare-event
/// estimates report *conditional* failures whose weighted rate is the
/// meaningful quantity.
pub fn find_crossing<F>(points: &[SweepPoint], target: F) -> Option<f64>
where
    F: Fn(f64) -> f64,
{
    let usable: Vec<&SweepPoint> = points.iter().filter(|p| p.estimate.rate > 0.0).collect();
    for pair in usable.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let fa = a.estimate.rate.ln() - target(a.g).ln();
        let fb = b.estimate.rate.ln() - target(b.g).ln();
        if fa <= 0.0 && fb > 0.0 {
            // Interpolate in ln(g).
            let la = a.g.ln();
            let lb = b.g.ln();
            let t = if (fb - fa).abs() < 1e-30 {
                0.5
            } else {
                -fa / (fb - fa)
            };
            return Some((la + t * (lb - la)).exp());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_point(g: f64, rate: f64) -> SweepPoint {
        let trials = 1_000_000u64;
        let failures = (rate * trials as f64).round() as u64;
        SweepPoint {
            g,
            estimate: ErrorEstimate::from_counts(failures.max(1), trials),
        }
    }

    #[test]
    fn log_grid_endpoints_and_spacing() {
        let grid = log_grid(1e-4, 1e-2, 3);
        assert!((grid[0] - 1e-4).abs() < 1e-12);
        assert!((grid[1] - 1e-3).abs() < 1e-9);
        assert!((grid[2] - 1e-2).abs() < 1e-8);
    }

    #[test]
    fn crossing_of_quadratic_map_is_found() {
        // p(g) = 108 g²; crossing p = g at g* = 1/108.
        let grid = log_grid(1e-4, 5e-2, 24);
        let points: Vec<SweepPoint> = grid
            .iter()
            .map(|&g| synthetic_point(g, (108.0 * g * g).min(0.9)))
            .collect();
        let g_star = find_crossing(&points, |g| g).expect("must cross");
        assert!(
            (g_star - 1.0 / 108.0).abs() / (1.0 / 108.0) < 0.25,
            "crossing {g_star} far from 1/108"
        );
    }

    #[test]
    fn no_crossing_returns_none() {
        let grid = log_grid(1e-4, 1e-2, 5);
        // Always below target.
        let points: Vec<SweepPoint> = grid.iter().map(|&g| synthetic_point(g, g * 0.01)).collect();
        assert!(find_crossing(&points, |g| g).is_none());
    }

    #[test]
    fn sweep_applies_estimator() {
        let grid = [0.1, 0.2];
        let points = sweep(&grid, |g| {
            ErrorEstimate::from_counts((g * 100.0) as u64, 100)
        });
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].estimate.failures, 20);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn log_grid_rejects_bad_range() {
        let _ = log_grid(0.1, 0.1, 5);
    }
}
