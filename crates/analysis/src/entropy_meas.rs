//! Empirical entropy measurement (§4).
//!
//! The fault-tolerant scheme ejects entropy exactly where ancillas are
//! reset: each `Init` erases whatever the previous cycle left on its wires.
//! This module attaches an [`ExecObserver`] that histograms the 3-bit
//! pre-reset patterns of every init site over many noisy runs; the summed
//! per-site Shannon entropies estimate the bits dissipated per run
//! (sub-additivity makes the sum an upper estimate of the joint entropy,
//! the same relaxation the paper uses).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rft_core::entropy::entropy_of_counts;
use rft_revsim::circuit::Circuit;
use rft_revsim::engine::Engine;
use rft_revsim::exec::ExecObserver;
use rft_revsim::noise::NoiseModel;
use rft_revsim::state::BitState;
use rft_revsim::wire::Wire;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Observer recording pre-reset bit patterns per init site.
#[derive(Debug, Default, Clone)]
pub struct ResetEntropyObserver {
    histograms: BTreeMap<usize, [u64; 8]>,
}

impl ResetEntropyObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct init sites observed.
    pub fn sites(&self) -> usize {
        self.histograms.len()
    }

    /// Total entropy in bits per run: sum over sites of the Shannon entropy
    /// of the observed pattern distribution.
    pub fn total_bits(&self) -> f64 {
        self.histograms.values().map(|h| entropy_of_counts(h)).sum()
    }

    /// Per-site entropies, keyed by op index.
    pub fn per_site_bits(&self) -> BTreeMap<usize, f64> {
        self.histograms
            .iter()
            .map(|(&i, h)| (i, entropy_of_counts(h)))
            .collect()
    }
}

impl ExecObserver for ResetEntropyObserver {
    fn before_init(&mut self, op_index: usize, _wires: &[Wire], values: u8) {
        self.histograms.entry(op_index).or_insert([0; 8])[values as usize] += 1;
    }
}

/// Result of an entropy measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyMeasurement {
    /// Trials run.
    pub trials: u64,
    /// Init sites in the circuit.
    pub sites: usize,
    /// Estimated bits dissipated per run (sum of per-site entropies).
    pub bits_per_run: f64,
}

/// Measures the reset entropy of `circuit` under `noise` over `trials`
/// runs from the fixed initial state `input` (fixed input ensures all
/// observed randomness comes from faults, matching §4's accounting).
///
/// # Panics
///
/// Panics if `trials == 0` or the input width mismatches the circuit.
pub fn measure_reset_entropy<N>(
    circuit: &Circuit,
    input: &BitState,
    noise: &N,
    trials: u64,
    seed: u64,
) -> EntropyMeasurement
where
    N: NoiseModel,
{
    assert!(trials > 0, "need at least one trial");
    let mut observer = ResetEntropyObserver::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Compile once, observe many: fault probabilities are derived a single
    // time instead of once per trial.
    let engine = Engine::compile(circuit, noise);
    for _ in 0..trials {
        let mut state = input.clone();
        engine.run_scalar_observed(&mut state, &mut rng, &mut observer);
    }
    EntropyMeasurement {
        trials,
        sites: observer.sites(),
        bits_per_run: observer.total_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rft_revsim::noise::{NoNoise, UniformNoise};
    use rft_revsim::wire::w;

    fn init_only_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.init(&[w(0), w(1), w(2)]);
        c
    }

    #[test]
    fn noiseless_fixed_input_has_zero_entropy() {
        let c = init_only_circuit();
        let m = measure_reset_entropy(&c, &BitState::zeros(3), &NoNoise, 200, 1);
        assert_eq!(m.sites, 1);
        assert_eq!(m.bits_per_run, 0.0);
    }

    #[test]
    fn deterministic_nonzero_input_still_zero_entropy() {
        // The reset erases a *deterministic* pattern: zero Shannon entropy
        // (erasure costs information-theoretically nothing if the value is
        // known).
        let c = init_only_circuit();
        let m = measure_reset_entropy(&c, &BitState::from_u64(0b101, 3), &NoNoise, 100, 1);
        assert_eq!(m.bits_per_run, 0.0);
    }

    #[test]
    fn upstream_faults_create_reset_entropy() {
        // A noisy gate before the init randomizes the pattern the init
        // must erase.
        let mut c = Circuit::new(3);
        c.maj(w(0), w(1), w(2)).init(&[w(0), w(1), w(2)]);
        let m = measure_reset_entropy(&c, &BitState::zeros(3), &UniformNoise::new(0.5), 4000, 2);
        assert!(m.bits_per_run > 0.5, "measured {}", m.bits_per_run);
        assert!(m.bits_per_run <= 3.0);
    }

    #[test]
    fn fully_random_reset_approaches_three_bits() {
        // With fault probability 1 the gate always randomizes: the init
        // erases a uniform 3-bit pattern = 3 bits of entropy.
        let mut c = Circuit::new(3);
        c.maj(w(0), w(1), w(2)).init(&[w(0), w(1), w(2)]);
        let m = measure_reset_entropy(&c, &BitState::zeros(3), &UniformNoise::new(1.0), 8000, 3);
        assert!(
            (m.bits_per_run - 3.0).abs() < 0.05,
            "measured {}",
            m.bits_per_run
        );
    }

    #[test]
    fn entropy_grows_with_fault_rate() {
        let mut c = Circuit::new(3);
        c.maj(w(0), w(1), w(2)).init(&[w(0), w(1), w(2)]);
        let lo =
            measure_reset_entropy(&c, &BitState::zeros(3), &UniformNoise::new(0.01), 20_000, 4);
        let hi = measure_reset_entropy(&c, &BitState::zeros(3), &UniformNoise::new(0.2), 20_000, 4);
        assert!(lo.bits_per_run < hi.bits_per_run);
    }
}
