//! The `Report` artifact and its renderers.
//!
//! Every experiment returns a [`Report`]: a schema-versioned, serdeable
//! bundle of aligned-text-renderable [`Table`]s, numeric [`Series`] (the
//! figure data), [`Check`] assertions (the experiment's self-verdict on
//! the paper's claims), and free-form notes. This module is a *pure
//! renderer*: it holds no experiment logic, only the artifact type and its
//! projections to aligned text, CSV and JSON.
//!
//! The JSON layout is stable and documented in `BENCH_NOTES.md`; bump
//! [`SCHEMA_VERSION`] on any breaking change so downstream consumers can
//! dispatch on it.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Duration;

/// Version of the `Report`/manifest JSON schema emitted by `--json`.
///
/// History: 1 — initial schema (id/title/tags/tables/series/checks/notes).
/// The optional `resources` section added later is **additive**: it is
/// omitted entirely when absent and ignored-if-missing when parsing, so
/// it does not bump the version.
pub const SCHEMA_VERSION: u32 = 1;

/// A simple aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "── {} ──", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                line.push_str("  ");
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "─".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A named numeric series — the raw data behind one curve of a figure,
/// kept in machine-readable form alongside the stringified [`Table`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series name (e.g. `"logical per-cycle, G = 11"`).
    pub name: String,
    /// Label of the x values (e.g. `"g"`).
    pub x_label: String,
    /// Label of the y values (e.g. `"logical error rate"`).
    pub y_label: String,
    /// `(x, y)` points in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from `(x, y)` points.
    pub fn new(
        name: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        points: Vec<(f64, f64)>,
    ) -> Self {
        Series {
            name: name.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points,
        }
    }
}

/// One self-check assertion of an experiment: the reproduced value, the
/// published (or structural) expectation, and the verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Check {
    /// What is being checked (e.g. `"Table 1 truth table matches paper"`).
    pub name: String,
    /// The value this run produced, stringified.
    pub got: String,
    /// The expected value, stringified.
    pub want: String,
    /// Whether the check passed.
    pub pass: bool,
}

impl Check {
    /// A check with explicit got/want strings and verdict.
    pub fn new(
        name: impl Into<String>,
        got: impl Into<String>,
        want: impl Into<String>,
        pass: bool,
    ) -> Self {
        Check {
            name: name.into(),
            got: got.into(),
            want: want.into(),
            pass,
        }
    }

    /// A check that passes iff `ok` (got/want are the booleans).
    pub fn bool(name: impl Into<String>, ok: bool) -> Self {
        Check::new(name, ok.to_string(), "true", ok)
    }

    /// A check that `got` and `want` are equal (by `PartialEq` +
    /// `Display`).
    pub fn eq<T: PartialEq + std::fmt::Display>(name: impl Into<String>, got: T, want: T) -> Self {
        let pass = got == want;
        Check::new(name, got.to_string(), want.to_string(), pass)
    }

    /// A check that `got` lies within `±tol` of `want`.
    pub fn approx(name: impl Into<String>, got: f64, want: f64, tol: f64) -> Self {
        Check::new(
            name,
            sci(got),
            format!("{} ± {}", sci(want), sci(tol)),
            (got - want).abs() <= tol,
        )
    }
}

/// Resource profile of one experiment run, attached to a [`Report`] only
/// on request (`repro --metrics`): wall-clock facts are **not**
/// deterministic, so golden artifacts are produced without this section.
///
/// All figures come from the experiment's child
/// [`Collector`](rft_obs::Collector) plus the runner's wall clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Wall-clock milliseconds for the whole experiment.
    pub wall_ms: f64,
    /// Milliseconds spent compiling programs/engines (`cache.compile_ns`).
    pub compile_ms: f64,
    /// Milliseconds inside `Engine` estimates (`engine.estimate_ns`).
    pub execute_ms: f64,
    /// Monte-Carlo words executed (`engine.executed_words`).
    pub executed_words: u64,
    /// Trials (lanes) executed (`engine.executed_trials`).
    pub executed_trials: u64,
    /// Executed words per wall-clock second.
    pub words_per_sec: f64,
    /// Compile-cache hits attributed to this experiment (`cache.hits`).
    pub cache_hits: u64,
    /// Compile-cache misses, i.e. compiles (`cache.misses`).
    pub cache_misses: u64,
    /// Stratified-estimator rounds executed (`estimator.rounds`).
    pub stratified_rounds: u64,
    /// Probability mass the stratified estimator resolved analytically
    /// (`estimator.elided_mass`, last run wins).
    pub elided_mass: f64,
}

impl ResourceUsage {
    /// Builds the section from a collector snapshot and the measured wall
    /// time. With the obs feature off (or a disabled collector) every
    /// counter-derived field is zero.
    pub fn from_observations(snapshot: &rft_obs::Snapshot, wall: Duration) -> Self {
        use rft_obs::{Gauge, Metric};
        let wall_s = wall.as_secs_f64();
        let executed_words = snapshot.counter(Metric::ExecutedWords);
        ResourceUsage {
            wall_ms: wall_s * 1e3,
            compile_ms: snapshot.counter(Metric::CompileNanos) as f64 / 1e6,
            execute_ms: snapshot.counter(Metric::EstimateNanos) as f64 / 1e6,
            executed_words,
            executed_trials: snapshot.counter(Metric::ExecutedTrials),
            words_per_sec: if wall_s > 0.0 {
                executed_words as f64 / wall_s
            } else {
                0.0
            },
            cache_hits: snapshot.counter(Metric::CacheHits),
            cache_misses: snapshot.counter(Metric::CacheMisses),
            stratified_rounds: snapshot.counter(Metric::StratifiedRounds),
            elided_mass: snapshot.gauge(Gauge::ElidedMass),
        }
    }

    /// Renders the section as an aligned two-column table.
    pub fn render(&self, id: &str) -> String {
        let mut t = Table::new(format!("{id} — resources"), &["fact", "value"]);
        t.row(&["wall".into(), format!("{:.2} ms", self.wall_ms)]);
        t.row(&["compile".into(), format!("{:.2} ms", self.compile_ms)]);
        t.row(&["execute".into(), format!("{:.2} ms", self.execute_ms)]);
        t.row(&["words".into(), self.executed_words.to_string()]);
        t.row(&["trials".into(), self.executed_trials.to_string()]);
        t.row(&["words/sec".into(), format!("{:.0}", self.words_per_sec)]);
        t.row(&[
            "cache hit/miss".into(),
            format!("{}/{}", self.cache_hits, self.cache_misses),
        ]);
        t.row(&["strat rounds".into(), self.stratified_rounds.to_string()]);
        t.row(&["elided mass".into(), format!("{:.6}", self.elided_mass)]);
        t.render()
    }
}

/// The schema-versioned result artifact of one experiment run.
///
/// A `Report` is pure data: deterministic for a given [`RunConfig`]
/// (wall-clock and host facts live in the run manifest, not here), so a
/// fixed seed produces bit-identical reports regardless of thread count
/// or experiment schedule. The one exception is the opt-in
/// [`ResourceUsage`] section, which is omitted from JSON entirely when
/// `None` — serialization is hand-written below so golden artifacts stay
/// byte-identical.
///
/// [`RunConfig`]: crate::experiments::RunConfig
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// JSON schema version ([`SCHEMA_VERSION`] at creation).
    pub schema_version: u32,
    /// Experiment id (registry key, e.g. `"threshold"`).
    pub id: String,
    /// Human-readable experiment title.
    pub title: String,
    /// Registry tags (e.g. `"mc"`, `"exact"`, `"sweep"`).
    pub tags: Vec<String>,
    /// Rendered result tables, in print order.
    pub tables: Vec<Table>,
    /// Machine-readable numeric series (figure data).
    pub series: Vec<Series>,
    /// Self-check assertions.
    pub checks: Vec<Check>,
    /// Free-form notes printed after the tables.
    pub notes: Vec<String>,
    /// Optional resource profile (see [`ResourceUsage`]); never attached
    /// to golden artifacts.
    pub resources: Option<ResourceUsage>,
}

// The derive serializes every field unconditionally and requires every
// key when parsing; `resources` must instead vanish when `None` (golden
// byte-identity) and default when missing (old artifacts parse), so both
// impls are written out.
impl Serialize for Report {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("id".to_string(), self.id.to_value()),
            ("title".to_string(), self.title.to_value()),
            ("tags".to_string(), self.tags.to_value()),
            ("tables".to_string(), self.tables.to_value()),
            ("series".to_string(), self.series.to_value()),
            ("checks".to_string(), self.checks.to_value()),
            ("notes".to_string(), self.notes.to_value()),
        ];
        if let Some(r) = &self.resources {
            fields.push(("resources".to_string(), r.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for Report {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = serde::as_map(v, "Report")?;
        let field = |key| serde::map_get(m, key, "Report");
        Ok(Report {
            schema_version: Deserialize::from_value(field("schema_version")?)?,
            id: Deserialize::from_value(field("id")?)?,
            title: Deserialize::from_value(field("title")?)?,
            tags: Deserialize::from_value(field("tags")?)?,
            tables: Deserialize::from_value(field("tables")?)?,
            series: Deserialize::from_value(field("series")?)?,
            checks: Deserialize::from_value(field("checks")?)?,
            notes: Deserialize::from_value(field("notes")?)?,
            resources: match m.iter().find(|(k, _)| k == "resources") {
                Some((_, v)) => Deserialize::from_value(v)?,
                None => None,
            },
        })
    }
}

impl Report {
    /// Creates an empty report for experiment `id`.
    pub fn new(id: impl Into<String>, title: impl Into<String>, tags: &[&str]) -> Self {
        Report {
            schema_version: SCHEMA_VERSION,
            id: id.into(),
            title: title.into(),
            tags: tags.iter().map(|t| t.to_string()).collect(),
            tables: Vec::new(),
            series: Vec::new(),
            checks: Vec::new(),
            notes: Vec::new(),
            resources: None,
        }
    }

    /// Appends a table.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Appends a numeric series.
    pub fn series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Appends a check.
    pub fn check(&mut self, check: Check) -> &mut Self {
        self.checks.push(check);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Whether every check passed (vacuously true with no checks).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The checks that failed.
    pub fn failed_checks(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }

    /// Renders the whole report as aligned text: tables, notes, then the
    /// check verdicts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&t.render());
        }
        for n in &self.notes {
            let _ = writeln!(out, "{n}");
        }
        if !self.checks.is_empty() {
            let mut t = Table::new(
                format!("{} — self-checks", self.id),
                &["check", "got", "want", "verdict"],
            );
            for c in &self.checks {
                t.row(&[
                    c.name.clone(),
                    c.got.clone(),
                    c.want.clone(),
                    if c.pass { "ok" } else { "FAILED" }.to_string(),
                ]);
            }
            out.push_str(&t.render());
        }
        if let Some(r) = &self.resources {
            out.push_str(&r.render(&self.id));
        }
        out
    }

    /// Prints the rendered report to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Concatenates every table's CSV (blank line between tables).
    pub fn to_csv(&self) -> String {
        self.tables
            .iter()
            .map(Table::to_csv)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Serializes the report to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed JSON or a shape
    /// mismatch.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Formats a rate in compact scientific notation.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if (0.001..10000.0).contains(&x.abs()) {
        format!("{x:.5}")
    } else {
        format!("{x:.3e}")
    }
}

/// Formats an estimate with its 95% interval.
pub fn rate_ci(rate: f64, low: f64, high: f64) -> String {
    format!("{} [{}, {}]", sci(rate), sci(low), sci(high))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["k", "value"]);
        t.row(&["0".into(), "1.5".into()]);
        t.row(&["10".into(), "x".into()]);
        let text = t.render();
        assert!(text.contains("demo"));
        assert!(text.contains("k "));
        assert!(text.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
        assert_eq!(t.headers().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1,5".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.starts_with("a,b"));
    }

    #[test]
    fn sci_formats_ranges() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(0.005).starts_with("0.005"));
        assert!(sci(1e-7).contains('e'));
        assert!(rate_ci(0.1, 0.05, 0.2).contains('['));
    }

    #[test]
    fn report_accumulates_and_renders() {
        let mut r = Report::new("demo", "Demo experiment", &["exact"]);
        let mut t = Table::new("numbers", &["k"]);
        t.row(&["1".into()]);
        r.table(t)
            .series(Series::new("s", "g", "rate", vec![(1.0, 2.0)]))
            .check(Check::bool("sanity", true))
            .note("a note");
        assert!(r.passed());
        assert!(r.failed_checks().is_empty());
        let text = r.render();
        assert!(text.contains("numbers"));
        assert!(text.contains("a note"));
        assert!(text.contains("self-checks"));
        assert!(r.to_csv().starts_with("k"));
    }

    #[test]
    fn failed_checks_are_reported() {
        let mut r = Report::new("demo", "Demo", &[]);
        r.check(Check::eq("count", 3u32, 4u32));
        assert!(!r.passed());
        assert_eq!(r.failed_checks().len(), 1);
        assert!(r.render().contains("FAILED"));
        let approx = Check::approx("ratio", 0.77, 0.8, 0.05);
        assert!(approx.pass);
    }

    #[test]
    fn resources_are_omitted_when_none_and_round_trip_when_some() {
        let mut r = Report::new("demo", "Demo", &[]);
        let without = r.to_json();
        // The additive section leaves resource-free artifacts untouched:
        // no key, not even a null.
        assert!(!without.contains("resources"));
        assert_eq!(Report::from_json(&without).expect("parse"), r);

        r.resources = Some(ResourceUsage {
            wall_ms: 12.5,
            compile_ms: 3.0,
            execute_ms: 8.0,
            executed_words: 1024,
            executed_trials: 65536,
            words_per_sec: 81920.0,
            cache_hits: 7,
            cache_misses: 2,
            stratified_rounds: 4,
            elided_mass: 0.75,
        });
        let with = r.to_json();
        assert!(with.contains("\"resources\""));
        assert!(with.contains("\"executed_words\": 1024"));
        let back = Report::from_json(&with).expect("round trip");
        assert_eq!(back, r);
        assert!(r.render().contains("demo — resources"));
    }

    #[test]
    fn report_json_round_trips() {
        let mut r = Report::new("demo", "Demo experiment", &["mc", "sweep"]);
        let mut t = Table::new("numbers", &["k", "v"]);
        t.row(&["1".into(), "x,y".into()]);
        r.table(t)
            .series(Series::new("s", "g", "rate", vec![(1e-3, 2.5e-7)]))
            .check(Check::new("c", "got", "want", false))
            .note("line \"quoted\"");
        let json = r.to_json();
        let back = Report::from_json(&json).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
    }
}
