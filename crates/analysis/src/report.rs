//! Plain-text table rendering for experiment reports.
//!
//! Every experiment prints its results as aligned text tables mirroring
//! the rows the paper reports, plus optional CSV for downstream plotting.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "── {} ──", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                line.push_str("  ");
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "─".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a rate in compact scientific notation.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if (0.001..10000.0).contains(&x.abs()) {
        format!("{x:.5}")
    } else {
        format!("{x:.3e}")
    }
}

/// Formats an estimate with its 95% interval.
pub fn rate_ci(rate: f64, low: f64, high: f64) -> String {
    format!("{} [{}, {}]", sci(rate), sci(low), sci(high))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["k", "value"]);
        t.row(&["0".into(), "1.5".into()]);
        t.row(&["10".into(), "x".into()]);
        let text = t.render();
        assert!(text.contains("demo"));
        assert!(text.contains("k "));
        assert!(text.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1,5".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.starts_with("a,b"));
    }

    #[test]
    fn sci_formats_ranges() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(0.005).starts_with("0.005"));
        assert!(sci(1e-7).contains('e'));
        assert!(rate_ci(0.1, 0.05, 0.2).contains('['));
    }
}
