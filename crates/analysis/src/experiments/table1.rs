//! `table1` / `fig1` / `fig5`: the MAJ gate — Table 1 truth table, the
//! Figure 1 CNOT/Toffoli decomposition, and the Figure 5 SWAP3 gate.

use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{Check, Report, Table};
use rft_core::maj::{format_bits, maj_permutation, verify_maj, MajVerification};
use rft_revsim::circuit::Circuit;
use rft_revsim::permutation::Permutation;
use rft_revsim::wire::w;
use serde::{Deserialize, Serialize};

/// Results of the MAJ-gate reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Truth-table rows as `q0q1q2` strings.
    pub rows: Vec<(String, String)>,
    /// All structural checks of Table 1 / Figure 1.
    pub matches_table_1: bool,
    /// First output bit is the input majority on every row.
    pub majority_property: bool,
    /// Figure 1 decomposition equals the primitive gate.
    pub decomposition_matches: bool,
    /// MAJ⁻¹ ∘ MAJ is the identity.
    pub inverse_matches: bool,
    /// Figure 5: SWAP3 equals two consecutive SWAPs.
    pub swap3_matches_two_swaps: bool,
}

/// Registry entry: the `table1` experiment.
pub struct Table1Experiment;

impl Experiment for Table1Experiment {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Table 1 / Figures 1 & 5 — the MAJ gate, exhaustively verified"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["exact", "structure"]
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Report {
        run().to_report()
    }
}

/// Runs every Table 1 / Figure 1 / Figure 5 check.
pub fn run() -> Table1Result {
    let MajVerification {
        rows,
        matches_table_1,
        majority_property,
        decomposition_matches,
        inverse_matches,
    } = verify_maj();

    // Figure 5: SWAP3 = swap(q0,q1); swap(q1,q2).
    let mut swap3 = Circuit::new(3);
    swap3.swap3(w(0), w(1), w(2));
    let mut two_swaps = Circuit::new(3);
    two_swaps.swap(w(0), w(1)).swap(w(1), w(2));
    let swap3_matches_two_swaps = Permutation::of_circuit(&swap3).expect("3 wires")
        == Permutation::of_circuit(&two_swaps).expect("3 wires");

    Table1Result {
        rows,
        matches_table_1,
        majority_property,
        decomposition_matches,
        inverse_matches,
        swap3_matches_two_swaps,
    }
}

impl Table1Result {
    /// Whether all checks passed.
    pub fn all_ok(&self) -> bool {
        self.matches_table_1
            && self.majority_property
            && self.decomposition_matches
            && self.inverse_matches
            && self.swap3_matches_two_swaps
    }

    /// The [`Report`] artifact: the paper-format tables plus one check
    /// per structural claim.
    pub fn to_report(&self) -> Report {
        let exp = &Table1Experiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new("Table 1 — reversible MAJ truth table", &["Input", "Output"]);
        for (i, o) in &self.rows {
            t.row(&[i.clone(), o.clone()]);
        }
        r.table(t);
        // The MAJ⁻¹ encoder rows (the property Figure 2 rests on).
        let p = maj_permutation().inverse();
        let mut enc = Table::new(
            "MAJ⁻¹ on (b,0,0) — repetition encoding",
            &["Input", "Output"],
        );
        for b in [0u64, 1] {
            enc.row(&[format_bits(b, 3), format_bits(p.apply(b), 3)]);
        }
        r.table(enc);
        r.check(Check::bool("matches paper Table 1", self.matches_table_1))
            .check(Check::bool(
                "first output bit = majority",
                self.majority_property,
            ))
            .check(Check::bool(
                "Figure 1 decomposition exact",
                self.decomposition_matches,
            ))
            .check(Check::bool("MAJ⁻¹ ∘ MAJ = identity", self.inverse_matches))
            .check(Check::bool(
                "Figure 5 SWAP3 = two SWAPs",
                self.swap3_matches_two_swaps,
            ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_table_1() {
        let r = run();
        assert!(r.all_ok());
        assert_eq!(r.rows.len(), 8);
        assert_eq!(r.rows[3], ("011".to_string(), "111".to_string()));
        assert_eq!(r.rows[4], ("100".to_string(), "011".to_string()));
    }

    #[test]
    fn print_renders() {
        run().print();
    }
}
