//! `table2`: §3.3 — concatenating 2D below 1D schemes. Reproduces the
//! published Table 2 column exactly and adds a semi-empirical variant using
//! the other published threshold pairings.

use crate::report::Table;
use rft_core::mixed::{table2, table2_for, Table2Row, PAPER_TABLE_2};
use rft_core::threshold::GateBudget;
use serde::{Deserialize, Serialize};

/// Results of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Computed rows with the paper's threshold pair (1/2109, 1/273).
    pub rows: Vec<Table2Row>,
    /// Paper's printed column for comparison.
    pub paper: Vec<(u32, u32, f64)>,
    /// Alternative pairing with initialization counted (1/2340, 1/360).
    pub with_init_rows: Vec<Table2Row>,
    /// Largest |computed − paper| over the column.
    pub max_deviation: f64,
}

/// Runs the Table 2 reproduction.
pub fn run() -> Table2Result {
    let rows = table2();
    let paper: Vec<(u32, u32, f64)> = PAPER_TABLE_2.to_vec();
    let max_deviation = rows
        .iter()
        .zip(paper.iter())
        .map(|(r, &(_, _, ratio))| (r.ratio - ratio).abs())
        .fold(0.0, f64::max);
    let with_init_rows = table2_for(
        GateBudget::LOCAL_1D_WITH_INIT.threshold(),
        GateBudget::LOCAL_2D_WITH_INIT.threshold(),
        5,
    );
    Table2Result {
        rows,
        paper,
        with_init_rows,
        max_deviation,
    }
}

impl Table2Result {
    /// Whether the computed column matches the paper to printed precision.
    pub fn matches_paper(&self) -> bool {
        self.max_deviation < 0.005
    }

    /// Prints both variants.
    pub fn print(&self) {
        let mut t = Table::new(
            "Table 2 — ρ(k)/ρ₂ for k levels of 2D under 1D (ρ₁ = 1/2109, ρ₂ = 1/273)",
            &["k", "Width", "ρ(k)/ρ₂ computed", "paper", "ρ(k)"],
        );
        for (r, &(_, _, paper)) in self.rows.iter().zip(self.paper.iter()) {
            t.row(&[
                r.k.to_string(),
                r.width.to_string(),
                format!("{:.4}", r.ratio),
                format!("{paper:.2}"),
                format!("1/{:.0}", 1.0 / r.rho_k),
            ]);
        }
        t.print();
        println!(
            "max |computed − paper| = {:.4} (printed precision 0.005)",
            self.max_deviation
        );
        let mut t2 = Table::new(
            "Table 2 variant — initialization counted (ρ₁ = 1/2340, ρ₂ = 1/360)",
            &["k", "Width", "ρ(k)/ρ₂", "ρ(k)"],
        );
        for r in &self.with_init_rows {
            t2.row(&[
                r.k.to_string(),
                r.width.to_string(),
                format!("{:.4}", r.ratio),
                format!("1/{:.0}", 1.0 / r.rho_k),
            ]);
        }
        t2.print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_2_exactly() {
        let r = run();
        assert!(r.matches_paper(), "max deviation {}", r.max_deviation);
        assert_eq!(r.rows.len(), 6);
        assert_eq!(r.rows[3].width, 27);
    }

    #[test]
    fn print_renders() {
        run().print();
    }
}
