//! `table2`: §3.3 — concatenating 2D below 1D schemes. Reproduces the
//! published Table 2 column exactly and adds a semi-empirical variant using
//! the other published threshold pairings.

use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{Check, Report, Series, Table};
use rft_core::mixed::{table2, table2_for, Table2Row, PAPER_TABLE_2};
use rft_core::threshold::GateBudget;
use serde::{Deserialize, Serialize};

/// Results of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Computed rows with the paper's threshold pair (1/2109, 1/273).
    pub rows: Vec<Table2Row>,
    /// Paper's printed column for comparison.
    pub paper: Vec<(u32, u32, f64)>,
    /// Alternative pairing with initialization counted (1/2340, 1/360).
    pub with_init_rows: Vec<Table2Row>,
    /// Largest |computed − paper| over the column.
    pub max_deviation: f64,
}

/// Registry entry: the `table2` experiment.
pub struct Table2Experiment;

impl Experiment for Table2Experiment {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn title(&self) -> &'static str {
        "Table 2 — §3.3 mixed 2D-under-1D concatenation thresholds"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["exact", "locality"]
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Report {
        run().to_report()
    }
}

/// Runs the Table 2 reproduction.
pub fn run() -> Table2Result {
    let rows = table2();
    let paper: Vec<(u32, u32, f64)> = PAPER_TABLE_2.to_vec();
    let max_deviation = rows
        .iter()
        .zip(paper.iter())
        .map(|(r, &(_, _, ratio))| (r.ratio - ratio).abs())
        .fold(0.0, f64::max);
    let with_init_rows = table2_for(
        GateBudget::LOCAL_1D_WITH_INIT.threshold(),
        GateBudget::LOCAL_2D_WITH_INIT.threshold(),
        5,
    );
    Table2Result {
        rows,
        paper,
        with_init_rows,
        max_deviation,
    }
}

impl Table2Result {
    /// Whether the computed column matches the paper to printed precision.
    pub fn matches_paper(&self) -> bool {
        self.max_deviation < 0.005
    }

    /// The [`Report`] artifact: both table variants plus the
    /// printed-precision check against the published column.
    pub fn to_report(&self) -> Report {
        let exp = &Table2Experiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            "Table 2 — ρ(k)/ρ₂ for k levels of 2D under 1D (ρ₁ = 1/2109, ρ₂ = 1/273)",
            &["k", "Width", "ρ(k)/ρ₂ computed", "paper", "ρ(k)"],
        );
        for (row, &(_, _, paper)) in self.rows.iter().zip(self.paper.iter()) {
            t.row(&[
                row.k.to_string(),
                row.width.to_string(),
                format!("{:.4}", row.ratio),
                format!("{paper:.2}"),
                format!("1/{:.0}", 1.0 / row.rho_k),
            ]);
        }
        r.table(t);
        let mut t2 = Table::new(
            "Table 2 variant — initialization counted (ρ₁ = 1/2340, ρ₂ = 1/360)",
            &["k", "Width", "ρ(k)/ρ₂", "ρ(k)"],
        );
        for row in &self.with_init_rows {
            t2.row(&[
                row.k.to_string(),
                row.width.to_string(),
                format!("{:.4}", row.ratio),
                format!("1/{:.0}", 1.0 / row.rho_k),
            ]);
        }
        r.table(t2);
        r.series(Series::new(
            "ρ(k)/ρ₂ computed",
            "k",
            "ratio",
            self.rows
                .iter()
                .map(|row| (row.k as f64, row.ratio))
                .collect(),
        ));
        r.check(Check::approx(
            "max |computed − paper| within printed precision",
            self.max_deviation,
            0.0,
            0.005,
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_2_exactly() {
        let r = run();
        assert!(r.matches_paper(), "max deviation {}", r.max_deviation);
        assert_eq!(r.rows.len(), 6);
        assert_eq!(r.rows[3].width, 27);
    }

    #[test]
    fn print_renders() {
        run().print();
    }
}
