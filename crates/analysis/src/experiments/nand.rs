//! `nand`: §4 footnote 4 — simulating irreversible NAND with noisy-free
//! reversible gates dissipates at least 3/2 bits per cycle, and `MAJ⁻¹`
//! achieves the optimum. Verified by exhausting all `8!` three-bit
//! reversible gates.

use crate::report::Table;
use rft_core::entropy::{
    nand_via_maj_inv, nand_via_toffoli, optimal_nand_dissipation, NandSimulation,
};
use serde::{Deserialize, Serialize};

/// Results of the NAND-dissipation reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NandResult {
    /// Toffoli-based simulation.
    pub toffoli: NandSimulation,
    /// MAJ⁻¹-based simulation (footnote 4).
    pub maj_inv: NandSimulation,
    /// Exhaustive optimum over all 3-bit reversible gates (bits).
    pub optimal_bits: f64,
    /// Number of optimal schemes found.
    pub optimal_schemes: usize,
}

/// Runs the dissipation comparison and exhaustive optimality search.
pub fn run() -> NandResult {
    let (optimal_bits, optimal_schemes) = optimal_nand_dissipation();
    NandResult {
        toffoli: nand_via_toffoli(),
        maj_inv: nand_via_maj_inv(),
        optimal_bits,
        optimal_schemes,
    }
}

impl NandResult {
    /// Whether footnote 4 verifies: optimum is exactly 3/2, achieved by
    /// `MAJ⁻¹` but not by the plain Toffoli wiring.
    pub fn footnote_4_ok(&self) -> bool {
        (self.optimal_bits - 1.5).abs() < 1e-12
            && (self.maj_inv.reset_joint_entropy - 1.5).abs() < 1e-12
            && self.toffoli.reset_joint_entropy > 1.5
    }

    /// Prints the comparison.
    pub fn print(&self) {
        let mut t = Table::new(
            "§4 footnote 4 — NAND from reversible gates: bits dissipated per cycle",
            &[
                "scheme",
                "joint reset entropy",
                "marginal sum",
                "conditional floor",
            ],
        );
        for sim in [&self.toffoli, &self.maj_inv] {
            t.row(&[
                sim.wiring.clone(),
                format!("{:.4}", sim.reset_joint_entropy),
                format!("{:.4}", sim.reset_marginal_sum),
                format!("{:.4}", sim.reset_conditional_entropy),
            ]);
        }
        t.print();
        println!(
            "exhaustive optimum over all 8! three-bit reversible gates: {:.4} bits \
             (paper: 3/2), achieved by {} (gate, wiring, output) schemes",
            self.optimal_bits, self.optimal_schemes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footnote_4_verifies() {
        let r = run();
        assert!(r.footnote_4_ok());
        assert!(r.optimal_schemes > 0);
        // The Toffoli wiring pays the full 2 bits without concentration.
        assert!((r.toffoli.reset_joint_entropy - 2.0).abs() < 1e-12);
    }

    #[test]
    fn print_renders() {
        run().print();
    }
}
