//! `nand`: §4 footnote 4 — simulating irreversible NAND with noisy-free
//! reversible gates dissipates at least 3/2 bits per cycle, and `MAJ⁻¹`
//! achieves the optimum. Verified by exhausting all `8!` three-bit
//! reversible gates.

use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{Check, Report, Table};
use rft_core::entropy::{
    nand_via_maj_inv, nand_via_toffoli, optimal_nand_dissipation, NandSimulation,
};
use serde::{Deserialize, Serialize};

/// Results of the NAND-dissipation reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NandResult {
    /// Toffoli-based simulation.
    pub toffoli: NandSimulation,
    /// MAJ⁻¹-based simulation (footnote 4).
    pub maj_inv: NandSimulation,
    /// Exhaustive optimum over all 3-bit reversible gates (bits).
    pub optimal_bits: f64,
    /// Number of optimal schemes found.
    pub optimal_schemes: usize,
}

/// Registry entry: the `nand` experiment.
pub struct NandExperiment;

impl Experiment for NandExperiment {
    fn id(&self) -> &'static str {
        "nand"
    }

    fn title(&self) -> &'static str {
        "§4 footnote 4 — 3/2-bit NAND dissipation optimum, by exhaustion"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["exact", "entropy"]
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Report {
        run().to_report()
    }
}

/// Runs the dissipation comparison and exhaustive optimality search.
pub fn run() -> NandResult {
    let (optimal_bits, optimal_schemes) = optimal_nand_dissipation();
    NandResult {
        toffoli: nand_via_toffoli(),
        maj_inv: nand_via_maj_inv(),
        optimal_bits,
        optimal_schemes,
    }
}

impl NandResult {
    /// Whether footnote 4 verifies: optimum is exactly 3/2, achieved by
    /// `MAJ⁻¹` but not by the plain Toffoli wiring.
    pub fn footnote_4_ok(&self) -> bool {
        (self.optimal_bits - 1.5).abs() < 1e-12
            && (self.maj_inv.reset_joint_entropy - 1.5).abs() < 1e-12
            && self.toffoli.reset_joint_entropy > 1.5
    }

    /// The [`Report`] artifact: the dissipation comparison plus the
    /// footnote-4 optimality checks.
    pub fn to_report(&self) -> Report {
        let exp = &NandExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            "§4 footnote 4 — NAND from reversible gates: bits dissipated per cycle",
            &[
                "scheme",
                "joint reset entropy",
                "marginal sum",
                "conditional floor",
            ],
        );
        for sim in [&self.toffoli, &self.maj_inv] {
            t.row(&[
                sim.wiring.clone(),
                format!("{:.4}", sim.reset_joint_entropy),
                format!("{:.4}", sim.reset_marginal_sum),
                format!("{:.4}", sim.reset_conditional_entropy),
            ]);
        }
        r.table(t);
        r.note(format!(
            "exhaustive optimum over all 8! three-bit reversible gates: {:.4} bits \
             (paper: 3/2), achieved by {} (gate, wiring, output) schemes",
            self.optimal_bits, self.optimal_schemes
        ));
        r.check(Check::approx(
            "exhaustive optimum is 3/2 bits",
            self.optimal_bits,
            1.5,
            1e-12,
        ))
        .check(Check::approx(
            "MAJ⁻¹ wiring achieves the optimum",
            self.maj_inv.reset_joint_entropy,
            1.5,
            1e-12,
        ))
        .check(Check::bool(
            "plain Toffoli wiring dissipates more than 3/2",
            self.toffoli.reset_joint_entropy > 1.5,
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footnote_4_verifies() {
        let r = run();
        assert!(r.footnote_4_ok());
        assert!(r.optimal_schemes > 0);
        // The Toffoli wiring pays the full 2 bits without concentration.
        assert!((r.toffoli.reset_joint_entropy - 2.0).abs() < 1e-12);
    }

    #[test]
    fn print_renders() {
        run().print();
    }
}
