//! Reproductions of every table and figure of the paper.
//!
//! One module per experiment, named by the experiment IDs of `DESIGN.md`.
//! Each module registers a unit struct implementing
//! [`Experiment`](crate::experiment::Experiment) (see
//! [`registry`](crate::experiment::registry)) whose `run` returns a
//! schema-versioned [`Report`](crate::report::Report); each also keeps a
//! `run(...)` function returning a typed result so integration tests can
//! assert on the numbers directly. The `repro` binary drives everything
//! through the registry and the cross-point parallel runner.
//!
//! | ID | artifact | module |
//! |----|----------|--------|
//! | `table1`, `fig1`, `fig5` | Table 1, Figures 1 & 5 | [`table1`] |
//! | `fig2`, `fig3` | recovery circuit & concatenation structure | [`fig2`] |
//! | `threshold` | §2.2 thresholds (Eq. 1) | [`threshold`] |
//! | `suppression` | Eq. 2 | [`suppression`] |
//! | `blowup` | §2.3 (Γ_L, S_L, worked example) | [`blowup`] |
//! | `levelreq` | Eq. 3 + poly-log overhead | [`levelreq`] |
//! | `fig4`, `fig6`, `fig7`, `local2d`, `local1d` | §3 local schemes | [`local`] |
//! | `table2` | §3.3 mixed concatenation | [`table2`] |
//! | `entropy` | §4 bounds vs measured | [`entropy`] |
//! | `nand` | §4 footnote 4 (3/2-bit NAND) | [`nand`] |
//! | `advantage` | §1/§4 design space | [`advantage`] |
//! | `detectcov`, `detectoverhead`, `detectwidth`, `detecthybrid` | parity-preserving detection subsystem | [`detect`] |

pub mod ablation;
pub mod advantage;
pub mod blowup;
pub mod detect;
pub mod entropy;
pub mod fig2;
pub mod levelreq;
pub mod local;
pub mod nand;
pub mod suppression;
pub mod table1;
pub mod table2;
pub mod threshold;

use rft_revsim::engine::{BackendKind, Estimator, McOptions, WordWidth};
use serde::{Deserialize, Serialize};

/// Monte-Carlo budget shared by the experiments — the experiment-facing
/// face of [`McOptions`]: every Monte-Carlo call site derives its options
/// from a `RunConfig` via [`RunConfig::options`], so the `repro` binary's
/// `--backend`, `--estimator` and `--rel-error` flags reach all
/// experiments uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Trials per Monte-Carlo point.
    pub trials: u64,
    /// Base RNG seed (experiments derive sub-seeds deterministically).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Backend selection policy (auto routes by trial count).
    pub backend: BackendKind,
    /// Estimator selection policy (auto routes deep-sub-threshold points
    /// to the fault-count-stratified rare-event estimator).
    pub estimator: Estimator,
    /// Wide-word width of the batch word loops (pure throughput: results
    /// are bit-identical at any width).
    pub width: WordWidth,
    /// Optional adaptive early stopping at this target relative error.
    pub target_rel_error: Option<f64>,
}

impl RunConfig {
    /// Full-fidelity budget for the `repro` binary.
    pub fn full() -> Self {
        RunConfig {
            trials: 200_000,
            seed: 2005,
            threads: default_threads(),
            backend: BackendKind::Auto,
            estimator: Estimator::Auto,
            width: WordWidth::Auto,
            target_rel_error: None,
        }
    }

    /// Reduced budget for integration tests and smoke runs.
    pub fn quick() -> Self {
        RunConfig {
            trials: 4_000,
            ..RunConfig::full()
        }
    }

    /// Lowers this budget into engine [`McOptions`]. Experiments salt the
    /// seed per point with [`McOptions::salt`].
    pub fn options(&self) -> McOptions {
        let opts = McOptions::new(self.trials)
            .seed(self.seed)
            .threads(self.threads)
            .backend(self.backend)
            .estimator(self.estimator)
            .width(self.width);
        match self.target_rel_error {
            Some(target) => opts.target_rel_error(target),
            None => opts,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::full()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_sane() {
        assert!(RunConfig::full().trials > RunConfig::quick().trials);
        assert!(RunConfig::default().threads >= 1);
    }
}
