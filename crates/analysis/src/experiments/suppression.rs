//! `suppression`: Equation 2 — doubly-exponential error suppression with
//! concatenation level below threshold, and divergence above it.
//!
//! Runs under [`RunConfig`]'s estimator policy (default
//! [`Estimator::Auto`](rft_revsim::engine::Estimator)): the deep
//! below-threshold points — exactly where level-1/level-2 logical rates
//! become too rare for plain Monte-Carlo — route to the
//! fault-count-stratified estimator with the concatenation-distance
//! elision (`ConcatTrial::min_failing_faults` = `2^L`), which conditions
//! every executed word on carrying at least `2^L` faults and re-weights
//! by the exact Poisson-binomial fault-count masses.

use super::RunConfig;
use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{sci, Check, Report, Series, Table};
use crate::stats::ErrorEstimate;
use rft_revsim::gate::Gate;
use rft_revsim::noise::UniformNoise;
use rft_revsim::wire::w;
use serde::{Deserialize, Serialize};

/// Measurements for one physical rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuppressionSeries {
    /// Physical error rate.
    pub g: f64,
    /// Ratio to the G = 11 threshold.
    pub g_over_rho: f64,
    /// Per-level raw estimates (failure over all cycles of a trial).
    pub measured: Vec<ErrorEstimate>,
    /// Per-level measured *per-cycle* logical error rates.
    pub per_cycle: Vec<f64>,
    /// Per-level Equation 2 bounds.
    pub eq2_bound: Vec<f64>,
}

/// Results of the Equation 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuppressionResult {
    /// Series per physical rate.
    pub series: Vec<SuppressionSeries>,
    /// Levels measured.
    pub levels: Vec<u8>,
}

/// Registry entry: the `suppression` experiment.
pub struct SuppressionExperiment;

impl Experiment for SuppressionExperiment {
    fn id(&self) -> &'static str {
        "suppression"
    }

    fn title(&self) -> &'static str {
        "Equation 2 — doubly-exponential suppression with concatenation level"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["mc", "sweep", "eq2", "rare-event"]
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Report {
        run_ctx(ctx).to_report()
    }
}

/// Runs the level sweep.
pub fn run(cfg: &RunConfig) -> SuppressionResult {
    run_ctx(&mut ExperimentContext::new(*cfg))
}

/// [`run`] on an explicit context: the three concatenated programs come
/// from the shared compile cache (instead of one compile per
/// rate × level), and the `(rate, level)` grid runs cross-point parallel.
pub fn run_ctx(ctx: &mut ExperimentContext) -> SuppressionResult {
    let budget = rft_core::threshold::GateBudget::NONLOCAL_WITH_INIT;
    let rho = budget.threshold();
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let levels: Vec<u8> = vec![0, 1, 2];
    let cycles = 3usize;
    // ρ is only a *lower bound* on the true threshold, so moderate
    // multiples of ρ still suppress; 16ρ sits above the measured
    // pseudo-threshold and shows the divergence.
    let rates = [rho / 10.0, rho / 4.0, rho / 2.0, rho * 2.0, rho * 16.0];

    // Compile each level's program once, shared by every rate.
    let programs: Vec<_> = levels
        .iter()
        .map(|&level| ctx.concat(level, gate, cycles))
        .collect();

    // One work item per (rate, level) pair: per-point cost is wildly
    // uneven (level 2 is ~65× the ops of level 1), exactly what the
    // work-stealing scheduler is for.
    let grid: Vec<(usize, usize)> = (0..rates.len())
        .flat_map(|ri| (0..levels.len()).map(move |li| (ri, li)))
        .collect();
    let estimates = ctx.run_parallel(grid.len(), |i, share| {
        let (ri, li) = grid[i];
        let (g, level) = (rates[ri], levels[li]);
        // Fewer trials at level 2 (1800 ops per trial).
        let trials = if level >= 2 {
            share.trials / 4
        } else {
            share.trials
        }
        .max(100);
        ctx.estimate_concat(
            &programs[li],
            &UniformNoise::new(g),
            &share
                .options()
                .trials(trials)
                .salt(g.to_bits() ^ level as u64),
        )
    });

    let series = rates
        .iter()
        .enumerate()
        .map(|(ri, &g)| {
            let measured: Vec<ErrorEstimate> = (0..levels.len())
                .map(|li| estimates[ri * levels.len() + li])
                .collect();
            let per_cycle = measured.iter().map(|m| m.per_cycle(cycles)).collect();
            let eq2_bound = levels
                .iter()
                .map(|&level| {
                    budget
                        .error_at_level(g, level as u32)
                        .expect("valid rate")
                        .min(1.0)
                })
                .collect();
            SuppressionSeries {
                g,
                g_over_rho: g / rho,
                measured,
                per_cycle,
                eq2_bound,
            }
        })
        .collect();
    SuppressionResult { series, levels }
}

impl SuppressionResult {
    /// Whether suppression holds below threshold: each extra level helps
    /// for `g ≤ ρ/4` (where Monte-Carlo resolution suffices).
    pub fn below_threshold_suppression(&self) -> bool {
        self.series
            .iter()
            .filter(|s| s.g_over_rho <= 0.26)
            .all(|s| {
                s.measured
                    .windows(2)
                    .zip(s.per_cycle.windows(2))
                    .all(|(m, p)| {
                        // Allow level-to-level comparison only when the lower
                        // level actually observed failures.
                        m[0].failures == 0 || p[1] <= p[0] * 1.2 + 1e-9
                    })
            })
    }

    /// The [`Report`] artifact: the level table, per-level series and the
    /// below/above-threshold behaviour checks.
    pub fn to_report(&self) -> Report {
        let exp = &SuppressionExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let headers: Vec<String> = std::iter::once("g/ρ".to_string())
            .chain(
                self.levels
                    .iter()
                    .flat_map(|l| [format!("L={l} per-cycle"), format!("L={l} Eq.2")]),
            )
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            "Equation 2 — per-cycle error vs concatenation level",
            &headers_ref,
        );
        for s in &self.series {
            let mut row = vec![format!("{:.2}", s.g_over_rho)];
            for (p, b) in s.per_cycle.iter().zip(&s.eq2_bound) {
                row.push(sci(*p));
                row.push(sci(*b));
            }
            t.row(&row);
        }
        r.table(t);
        for (i, &level) in self.levels.iter().enumerate() {
            r.series(Series::new(
                format!("per-cycle logical rate, L = {level}"),
                "g/ρ",
                "logical error rate",
                self.series
                    .iter()
                    .map(|s| (s.g_over_rho, s.per_cycle[i]))
                    .collect(),
            ));
        }
        r.check(Check::bool(
            "each extra level suppresses below threshold (g ≤ ρ/4)",
            self.below_threshold_suppression(),
        ));
        if let Some(above) = self.series.iter().find(|s| s.g_over_rho > 10.0) {
            r.check(Check::bool(
                "far above threshold concatenation stops helping",
                above.per_cycle[1] > 0.05 && above.per_cycle[1] > above.per_cycle[0],
            ));
        }
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_levels_help() {
        let r = run(&RunConfig {
            trials: 3000,
            seed: 11,
            threads: 4,
            ..RunConfig::quick()
        });
        assert!(r.below_threshold_suppression());
    }

    #[test]
    fn far_above_threshold_levels_do_not_help() {
        let r = run(&RunConfig {
            trials: 2000,
            seed: 13,
            threads: 4,
            ..RunConfig::quick()
        });
        let above = r.series.iter().find(|s| s.g_over_rho > 10.0).unwrap();
        // At 16ρ the encoded machine is broken: error rates are large and
        // concatenating deeper makes things worse, not better.
        assert!(above.per_cycle[1] > 0.05, "L1 rate {}", above.per_cycle[1]);
        assert!(
            above.per_cycle[2] >= above.per_cycle[1] * 0.8,
            "L2 {} unexpectedly beats L1 {}",
            above.per_cycle[2],
            above.per_cycle[1]
        );
        assert!(above.per_cycle[1] > above.per_cycle[0]);
    }

    #[test]
    fn moderate_g_above_analytic_rho_still_suppresses() {
        // Reproduction nuance: ρ = 1/165 is a *lower bound*; the measured
        // scheme still improves at 2ρ (the true pseudo-threshold is
        // higher). This pins the "thresholds are conservative" claim.
        let r = run(&RunConfig {
            trials: 6000,
            seed: 17,
            threads: 4,
            ..RunConfig::quick()
        });
        let two_rho = r
            .series
            .iter()
            .find(|s| (s.g_over_rho - 2.0).abs() < 0.01)
            .unwrap();
        assert!(
            two_rho.per_cycle[1] < two_rho.g,
            "L1 {} should beat bare g {}",
            two_rho.per_cycle[1],
            two_rho.g
        );
    }

    #[test]
    fn print_renders() {
        run(&RunConfig {
            trials: 400,
            seed: 5,
            threads: 2,
            ..RunConfig::quick()
        })
        .print();
    }
}
