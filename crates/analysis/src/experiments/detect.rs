//! `detectcov`, `detectoverhead`, `detectwidth`, `detecthybrid`: the
//! online fault-*detection* design point, built on the parity-preserving
//! gate library (`rft-detect`).
//!
//! Where the paper's multiplexing scheme pays 3× wires plus a recovery
//! network to *correct* faults, the parity-preserving constructions pay
//! one rail and a comparator scan to *detect* them. These experiments
//! measure both sides of that trade: exhaustive single-fault coverage
//! (100% of bit-flips, exactly half of the paper's random-pattern
//! faults), gate-count overhead against a level-1 majority lower bound,
//! scaling across adder constructions and widths, and the hybrid
//! retry/discard policy whose residual undetected-and-wrong rate the
//! rare-event machinery resolves at deep-sub-threshold fault rates.

use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{rate_ci, sci, Check, Report, Series, Table};
use crate::stats::ErrorEstimate;
use rft_core::recovery::E_WITH_INIT;
use rft_detect::{
    exhaustive_coverage, Adder, AdderKind, AdderTrial, CheckedAdder, Coverage, CoverageReport,
    TrialMode,
};
use rft_obs::Metric;
use rft_revsim::engine::McOutcome;
use rft_revsim::noise::UniformNoise;
use serde::{Deserialize, Serialize};

/// The fault rate the fixed-rate detection experiments run at.
const DETECT_G: f64 = 1e-3;

/// Estimates one trial mode on a cached engine, salted per point. `cfg`
/// is the (possibly per-item) budget the options derive from; the engine
/// comes from `ctx`'s shared compile cache.
fn sample(
    ctx: &ExperimentContext,
    cfg: &crate::experiments::RunConfig,
    checked: &CheckedAdder,
    g: f64,
    mode: TrialMode,
    salt: u64,
) -> McOutcome {
    let noise = UniformNoise::new(g);
    let engine = ctx
        .cache()
        .engine_with(ctx.obs(), &checked.checked.circuit, &noise);
    ctx.obs().incr(Metric::DetectEstimates);
    engine.estimate_obs(&checked.trial(mode), &cfg.options().salt(salt), ctx.obs())
}

/// Synthesizes and wraps an adder, accounting the synthesis in the obs
/// catalog's `detect` subsystem.
fn synth(ctx: &ExperimentContext, kind: AdderKind, width: usize) -> CheckedAdder {
    ctx.obs().incr(Metric::DetectSyntheses);
    CheckedAdder::new(kind, width)
}

/// Accounts an exhaustive coverage enumeration: one count per evaluated
/// `(op, pattern, input)` case (the odd/even classes partition them).
fn account_coverage(ctx: &ExperimentContext, r: &CoverageReport) {
    let cases = r.body_odd.cases + r.body_even.cases + r.checker_odd.cases + r.checker_even.cases;
    ctx.obs().add(Metric::DetectCoverageCases, cases);
}

/// Lower bound on the op count of protecting `plain` with one level of
/// majority multiplexing: every gate becomes a transversal triple and
/// every wire becomes an encoded bit that pays one recovery network
/// (`E = 8` ops, Figure 2) per cycle. Encoders and any routing are not
/// counted — the bound only strengthens the comparison.
fn majority_level1_ops(plain: &Adder) -> usize {
    3 * plain.circuit.stats().gate_ops() + E_WITH_INIT * plain.circuit.n_wires()
}

fn coverage_rows(t: &mut Table, label: &str, c: &Coverage) {
    t.row(&[
        label.to_string(),
        c.cases.to_string(),
        c.harmful.to_string(),
        c.detected.to_string(),
        c.harmful_undetected.to_string(),
        c.false_alarms.to_string(),
    ]);
}

// ---------------------------------------------------------------------------
// detectcov
// ---------------------------------------------------------------------------

/// Results of the single-fault detection-coverage reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectCovResult {
    /// Adder width the exhaustive pass ran at.
    pub width: usize,
    /// Exhaustive classification of every `(op, pattern, input)` triple.
    pub coverage: CoverageReport,
    /// Fault rate of the sampled cross-check.
    pub g: f64,
    /// Sampled raw wrong rate (flag ignored).
    pub wrong: ErrorEstimate,
    /// Sampled undetected-and-wrong rate (the residual).
    pub undetected: ErrorEstimate,
    /// Sampled detection/retry rate.
    pub detected: ErrorEstimate,
}

/// Registry entry: the `detectcov` experiment.
pub struct DetectCovExperiment;

impl Experiment for DetectCovExperiment {
    fn id(&self) -> &'static str {
        "detectcov"
    }

    fn title(&self) -> &'static str {
        "Parity detection — exhaustive single-fault coverage + sampled cross-check"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["detect", "exact", "mc"]
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Report {
        run_cov(ctx).to_report()
    }
}

/// Runs the coverage experiment under `ctx`'s budget.
pub fn run_cov(ctx: &ExperimentContext) -> DetectCovResult {
    let width = 2;
    let checked = synth(ctx, AdderKind::Ripple, width);
    let coverage = exhaustive_coverage(
        &checked.checked,
        &checked.adder.input_wires(),
        &checked.adder.output_wires(),
    );
    account_coverage(ctx, &coverage);
    // Identical salt across modes: the three estimates see the same
    // inputs and fault realizations, so undetected ⊆ wrong holds
    // count-exactly, not just in distribution.
    const SALT: u64 = 0xc0;
    let cfg = *ctx.cfg();
    DetectCovResult {
        width,
        coverage,
        g: DETECT_G,
        wrong: sample(ctx, &cfg, &checked, DETECT_G, TrialMode::Wrong, SALT).into(),
        undetected: sample(
            ctx,
            &cfg,
            &checked,
            DETECT_G,
            TrialMode::UndetectedWrong,
            SALT,
        )
        .into(),
        detected: sample(ctx, &cfg, &checked, DETECT_G, TrialMode::Detected, SALT).into(),
    }
}

impl DetectCovResult {
    /// The [`Report`] artifact.
    pub fn to_report(&self) -> Report {
        let exp = &DetectCovExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let c = &self.coverage;
        let mut t = Table::new(
            format!(
                "exhaustive single-fault classification — checked ripple adder, width {} \
                 ({} inputs × {} ops)",
                self.width, c.inputs, c.ops
            )
            .as_str(),
            &[
                "site / deviation",
                "cases",
                "harmful",
                "detected",
                "harmful∧undetected",
                "false alarms",
            ],
        );
        coverage_rows(&mut t, "body, weight 1 (bit-flip)", &c.body_weight1);
        coverage_rows(&mut t, "body, odd weight", &c.body_odd);
        coverage_rows(&mut t, "body, even weight", &c.body_even);
        coverage_rows(&mut t, "checker, weight 1", &c.checker_weight1);
        coverage_rows(&mut t, "checker, even weight", &c.checker_even);
        r.table(t);
        let mut s = Table::new(
            format!("sampled cross-check at g = {}", sci(self.g)).as_str(),
            &["rate", "estimate"],
        );
        for (name, est) in [
            ("wrong (flag ignored)", &self.wrong),
            ("undetected ∧ wrong", &self.undetected),
            ("detected (retry)", &self.detected),
        ] {
            s.row(&[name.to_string(), rate_ci(est.rate, est.low, est.high)]);
        }
        r.table(s);
        r.note(
            "the paper's fault model replaces a faulted op's support with a uniform \
             pattern; deviations are odd-weight (parity-visible) exactly half the \
             time, so random-pattern coverage sits at 1/2 while bit-flip coverage \
             is 100%",
        );
        r.check(Check::eq(
            "every body-site bit-flip detected",
            c.body_weight1.detected,
            c.body_weight1.cases,
        ))
        .check(Check::eq(
            "no harmful-undetected bit-flip at body sites",
            c.body_weight1.harmful_undetected,
            0,
        ))
        .check(Check::eq(
            "odd-weight body deviations all detected",
            c.body_odd.detected,
            c.body_odd.cases,
        ))
        .check(Check::eq(
            "even-weight body deviations all invisible",
            c.body_even.detected,
            0,
        ))
        .check(Check::bool(
            "sampled residual ≤ sampled wrong (same fault stream)",
            self.undetected.failures <= self.wrong.failures,
        ))
        .check(Check::bool(
            "sampled detection rate positive",
            self.detected.failures > 0,
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

// ---------------------------------------------------------------------------
// detectoverhead
// ---------------------------------------------------------------------------

/// One width's cost/benefit row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Operand width.
    pub width: usize,
    /// Plain (unprotected) adder ops.
    pub plain_ops: usize,
    /// Checked parity-preserving ripple ops (body + rail + comparator).
    pub checked_ops: usize,
    /// Lower bound on level-1 majority ops for the plain adder.
    pub majority_ops: usize,
    /// Sampled wrong rate of the plain adder at the matched fault rate.
    pub plain_wrong: ErrorEstimate,
    /// Sampled wrong rate of the checked adder (flag ignored).
    pub checked_wrong: ErrorEstimate,
    /// Sampled undetected-and-wrong (residual) rate of the checked adder.
    pub checked_undetected: ErrorEstimate,
}

/// Results of the overhead comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectOverheadResult {
    /// Matched fault rate of the sampled columns.
    pub g: f64,
    /// One row per width.
    pub rows: Vec<OverheadRow>,
    /// Exhaustive bit-flip coverage at the smallest width (body sites).
    pub bitflip_coverage: f64,
}

/// Registry entry: the `detectoverhead` experiment.
pub struct DetectOverheadExperiment;

impl Experiment for DetectOverheadExperiment {
    fn id(&self) -> &'static str {
        "detectoverhead"
    }

    fn title(&self) -> &'static str {
        "Detection vs correction — gate-count overhead against level-1 majority"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["detect", "mc"]
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Report {
        run_overhead(ctx).to_report()
    }
}

/// Runs the overhead comparison under `ctx`'s budget.
pub fn run_overhead(ctx: &ExperimentContext) -> DetectOverheadResult {
    let widths = [2usize, 4, 8];
    let rows = ctx.run_parallel(widths.len(), |i, share| {
        let width = widths[i];
        let plain = Adder::new(AdderKind::PlainRipple, width);
        let checked = synth(ctx, AdderKind::Ripple, width);
        let salt = 0xdead + i as u64;
        let noise = UniformNoise::new(DETECT_G);
        let plain_engine = ctx.cache().engine_with(ctx.obs(), &plain.circuit, &noise);
        let plain_wrong = plain_engine
            .estimate_obs(
                &AdderTrial::unchecked(&plain, TrialMode::Wrong),
                &share.options().salt(salt),
                ctx.obs(),
            )
            .into();
        DetectOverheadResult::row(ctx, share, width, plain, checked, plain_wrong, salt)
    });
    let ca = synth(ctx, AdderKind::Ripple, 2);
    let cov = exhaustive_coverage(
        &ca.checked,
        &ca.adder.input_wires(),
        &ca.adder.output_wires(),
    );
    account_coverage(ctx, &cov);
    DetectOverheadResult {
        g: DETECT_G,
        rows,
        bitflip_coverage: cov.body_weight1.detection_rate(),
    }
}

impl DetectOverheadResult {
    fn row(
        ctx: &ExperimentContext,
        cfg: &crate::experiments::RunConfig,
        width: usize,
        plain: Adder,
        checked: CheckedAdder,
        plain_wrong: ErrorEstimate,
        salt: u64,
    ) -> OverheadRow {
        OverheadRow {
            width,
            plain_ops: plain.circuit.len(),
            checked_ops: checked.checked.circuit.len(),
            majority_ops: majority_level1_ops(&plain),
            plain_wrong,
            checked_wrong: sample(ctx, cfg, &checked, DETECT_G, TrialMode::Wrong, salt).into(),
            checked_undetected: sample(
                ctx,
                cfg,
                &checked,
                DETECT_G,
                TrialMode::UndetectedWrong,
                salt,
            )
            .into(),
        }
    }

    /// The [`Report`] artifact.
    pub fn to_report(&self) -> Report {
        let exp = &DetectOverheadExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            format!(
                "gate count and sampled rates at matched g = {} (majority column is a \
                 lower bound: 3× transversal + E = {} recovery ops per wire)",
                sci(self.g),
                E_WITH_INIT
            )
            .as_str(),
            &[
                "width",
                "plain ops",
                "checked ops",
                "majority-1 ops (≥)",
                "plain wrong",
                "checked wrong",
                "checked residual",
            ],
        );
        for row in &self.rows {
            t.row(&[
                row.width.to_string(),
                row.plain_ops.to_string(),
                row.checked_ops.to_string(),
                row.majority_ops.to_string(),
                rate_ci(
                    row.plain_wrong.rate,
                    row.plain_wrong.low,
                    row.plain_wrong.high,
                ),
                rate_ci(
                    row.checked_wrong.rate,
                    row.checked_wrong.low,
                    row.checked_wrong.high,
                ),
                rate_ci(
                    row.checked_undetected.rate,
                    row.checked_undetected.low,
                    row.checked_undetected.high,
                ),
            ]);
        }
        r.table(t);
        r.series(Series::new(
            "ops vs width",
            "width",
            "ops",
            self.rows
                .iter()
                .map(|row| (row.width as f64, row.checked_ops as f64))
                .collect(),
        ));
        r.check(Check::approx(
            "body-site bit-flip coverage is 100%",
            self.bitflip_coverage,
            1.0,
            0.0,
        ));
        for row in &self.rows {
            r.check(Check::bool(
                format!(
                    "width {}: checked ops ({}) strictly below majority-1 lower bound ({})",
                    row.width, row.checked_ops, row.majority_ops
                ),
                row.checked_ops < row.majority_ops,
            ))
            .check(Check::bool(
                format!("width {}: residual ≤ wrong (same fault stream)", row.width),
                row.checked_undetected.failures <= row.checked_wrong.failures,
            ));
        }
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

// ---------------------------------------------------------------------------
// detectwidth
// ---------------------------------------------------------------------------

/// One `(construction, width)` scaling point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WidthPoint {
    /// Construction name (stable, lowercase).
    pub kind: String,
    /// Operand width.
    pub width: usize,
    /// Wrapped circuit ops.
    pub ops: usize,
    /// Wrapped circuit wires.
    pub wires: usize,
    /// Wrapped circuit depth (ASAP schedule).
    pub depth: usize,
    /// Sampled wrong rate at the fixed fault rate.
    pub wrong: ErrorEstimate,
    /// Sampled residual (undetected ∧ wrong) rate.
    pub undetected: ErrorEstimate,
    /// Sampled detection/retry rate.
    pub detected: ErrorEstimate,
}

/// Results of the width-scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectWidthResult {
    /// The fixed fault rate.
    pub g: f64,
    /// All `(construction, width)` points, kinds-major.
    pub points: Vec<WidthPoint>,
}

/// Registry entry: the `detectwidth` experiment.
pub struct DetectWidthExperiment;

impl Experiment for DetectWidthExperiment {
    fn id(&self) -> &'static str {
        "detectwidth"
    }

    fn title(&self) -> &'static str {
        "Checked-adder scaling — ripple vs carry-skip vs lookahead across widths"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["detect", "mc", "sweep"]
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Report {
        run_width(ctx).to_report()
    }
}

const WIDTH_KINDS: [AdderKind; 4] = [
    AdderKind::Ripple,
    AdderKind::CarrySkip { block: 2 },
    AdderKind::CarrySkip { block: 4 },
    AdderKind::Cla,
];
const WIDTHS: [usize; 4] = [2, 4, 8, 16];

/// Runs the width-scaling sweep under `ctx`'s budget.
pub fn run_width(ctx: &ExperimentContext) -> DetectWidthResult {
    let grid: Vec<(AdderKind, usize)> = WIDTH_KINDS
        .iter()
        .flat_map(|&kind| WIDTHS.iter().map(move |&wd| (kind, wd)))
        .collect();
    let points = ctx.run_parallel(grid.len(), |i, share| {
        let (kind, width) = grid[i];
        let checked = synth(ctx, kind, width);
        let salt = 0x71d + i as u64;
        WidthPoint {
            kind: kind.name(),
            width,
            ops: checked.checked.circuit.len(),
            wires: checked.checked.circuit.n_wires(),
            depth: checked.checked.circuit.depth(),
            wrong: sample(ctx, share, &checked, DETECT_G, TrialMode::Wrong, salt).into(),
            undetected: sample(
                ctx,
                share,
                &checked,
                DETECT_G,
                TrialMode::UndetectedWrong,
                salt,
            )
            .into(),
            detected: sample(ctx, share, &checked, DETECT_G, TrialMode::Detected, salt).into(),
        }
    });
    DetectWidthResult {
        g: DETECT_G,
        points,
    }
}

impl DetectWidthResult {
    fn point(&self, kind: &str, width: usize) -> &WidthPoint {
        self.points
            .iter()
            .find(|p| p.kind == kind && p.width == width)
            .expect("grid covers all (kind, width) pairs")
    }

    /// The [`Report`] artifact.
    pub fn to_report(&self) -> Report {
        let exp = &DetectWidthExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            format!("checked adders at g = {}", sci(self.g)).as_str(),
            &[
                "construction",
                "width",
                "ops",
                "wires",
                "depth",
                "wrong",
                "residual",
                "retry rate",
            ],
        );
        for p in &self.points {
            t.row(&[
                p.kind.clone(),
                p.width.to_string(),
                p.ops.to_string(),
                p.wires.to_string(),
                p.depth.to_string(),
                rate_ci(p.wrong.rate, p.wrong.low, p.wrong.high),
                rate_ci(p.undetected.rate, p.undetected.low, p.undetected.high),
                rate_ci(p.detected.rate, p.detected.low, p.detected.high),
            ]);
        }
        r.table(t);
        for kind in ["ripple", "carry-skip/4", "cla"] {
            r.series(Series::new(
                format!("{kind} ops"),
                "width",
                "ops",
                self.points
                    .iter()
                    .filter(|p| p.kind == kind)
                    .map(|p| (p.width as f64, p.ops as f64))
                    .collect(),
            ));
            r.series(Series::new(
                format!("{kind} residual"),
                "width",
                "undetected ∧ wrong rate",
                self.points
                    .iter()
                    .filter(|p| p.kind == kind)
                    .map(|p| (p.width as f64, p.undetected.rate))
                    .collect(),
            ));
        }
        r.check(Check::bool(
            "ripple is the cheapest construction at width 8",
            self.point("ripple", 8).ops < self.point("carry-skip/4", 8).ops
                && self.point("carry-skip/4", 8).ops < self.point("cla", 8).ops,
        ))
        .check(Check::bool(
            "residual ≤ wrong at every point (same fault stream)",
            self.points
                .iter()
                .all(|p| p.undetected.failures <= p.wrong.failures),
        ))
        .check(Check::bool(
            "wider adders expose more fault surface: ripple wrong rate grows 2→16",
            self.point("ripple", 16).wrong.rate >= self.point("ripple", 2).wrong.rate,
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

// ---------------------------------------------------------------------------
// detecthybrid
// ---------------------------------------------------------------------------

/// One fault-rate point of the hybrid retry/discard policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridPoint {
    /// Per-op fault rate.
    pub g: f64,
    /// Raw wrong rate (no policy).
    pub wrong: ErrorEstimate,
    /// Residual undetected-and-wrong rate (what the policy ships).
    pub undetected: ErrorEstimate,
    /// Detection/retry rate (the policy's rerun cost).
    pub detected: ErrorEstimate,
    /// Which estimator resolved the residual (`"plain"`/`"stratified"`).
    pub estimator: String,
}

impl HybridPoint {
    /// Expected attempts per accepted result: `1 / (1 - retry rate)`.
    pub fn expected_attempts(&self) -> f64 {
        1.0 / (1.0 - self.detected.rate).max(f64::EPSILON)
    }

    /// Error rate among *accepted* results:
    /// `residual / (1 - retry rate)`.
    pub fn accepted_error(&self) -> f64 {
        self.undetected.rate / (1.0 - self.detected.rate).max(f64::EPSILON)
    }
}

/// Results of the hybrid retry/discard experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectHybridResult {
    /// Checked-adder width the policy runs on.
    pub width: usize,
    /// One point per fault rate, ascending.
    pub points: Vec<HybridPoint>,
}

/// Registry entry: the `detecthybrid` experiment.
pub struct DetectHybridExperiment;

impl Experiment for DetectHybridExperiment {
    fn id(&self) -> &'static str {
        "detecthybrid"
    }

    fn title(&self) -> &'static str {
        "Hybrid retry/discard — residual error of parity-gated acceptance"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["detect", "mc", "rare"]
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Report {
        run_hybrid(ctx).to_report()
    }
}

const HYBRID_GRID: [f64; 5] = [1e-4, 3e-4, 1e-3, 3e-3, 1e-2];

/// Runs the hybrid policy sweep under `ctx`'s budget.
pub fn run_hybrid(ctx: &ExperimentContext) -> DetectHybridResult {
    let width = 4;
    let points = ctx.run_parallel(HYBRID_GRID.len(), |i, share| {
        let g = HYBRID_GRID[i];
        let checked = synth(ctx, AdderKind::Ripple, width);
        let salt = 0x4b1d + i as u64;
        let undetected = sample(ctx, share, &checked, g, TrialMode::UndetectedWrong, salt);
        HybridPoint {
            g,
            wrong: sample(ctx, share, &checked, g, TrialMode::Wrong, salt).into(),
            detected: sample(ctx, share, &checked, g, TrialMode::Detected, salt).into(),
            estimator: undetected.estimator.to_string(),
            undetected: undetected.into(),
        }
    });
    DetectHybridResult { width, points }
}

impl DetectHybridResult {
    /// The [`Report`] artifact.
    pub fn to_report(&self) -> Report {
        let exp = &DetectHybridExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            format!(
                "parity-gated retry/discard on the checked ripple adder, width {}",
                self.width
            )
            .as_str(),
            &[
                "g",
                "raw wrong",
                "residual (ships)",
                "retry rate",
                "E[attempts]",
                "accepted error",
                "estimator",
            ],
        );
        for p in &self.points {
            t.row(&[
                sci(p.g),
                rate_ci(p.wrong.rate, p.wrong.low, p.wrong.high),
                rate_ci(p.undetected.rate, p.undetected.low, p.undetected.high),
                rate_ci(p.detected.rate, p.detected.low, p.detected.high),
                format!("{:.4}", p.expected_attempts()),
                sci(p.accepted_error()),
                p.estimator.clone(),
            ]);
        }
        r.table(t);
        r.series(Series::new(
            "raw wrong",
            "g",
            "rate",
            self.points.iter().map(|p| (p.g, p.wrong.rate)).collect(),
        ));
        r.series(Series::new(
            "residual",
            "g",
            "rate",
            self.points
                .iter()
                .map(|p| (p.g, p.undetected.rate))
                .collect(),
        ));
        r.note(
            "the residual column is the rare event the stratified estimator \
             exists for: at the lowest rates almost every word is fault-free \
             and elided analytically",
        );
        r.check(Check::bool(
            "residual ≤ raw wrong at every rate (same fault stream)",
            self.points
                .iter()
                .all(|p| p.undetected.failures <= p.wrong.failures),
        ))
        .check(Check::bool(
            "policy measurably bites at the highest rate",
            self.points.last().is_some_and(|p| p.detected.failures > 0),
        ))
        .check(Check::bool(
            "raw wrong rate is monotone in g",
            self.points
                .windows(2)
                .all(|w| w[0].wrong.rate <= w[1].wrong.rate),
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::RunConfig;

    fn quick_ctx() -> ExperimentContext {
        ExperimentContext::new(RunConfig {
            threads: 2,
            ..RunConfig::quick()
        })
    }

    #[test]
    fn cov_report_passes_all_checks() {
        let r = run_cov(&quick_ctx()).to_report();
        assert!(r.passed(), "failed: {:?}", r.failed_checks());
    }

    #[test]
    fn overhead_beats_majority_everywhere() {
        let res = run_overhead(&quick_ctx());
        for row in &res.rows {
            assert!(row.checked_ops < row.majority_ops, "width {}", row.width);
        }
        assert_eq!(res.bitflip_coverage, 1.0);
        assert!(res.to_report().passed());
    }

    #[test]
    fn width_sweep_covers_the_grid_and_passes() {
        let res = run_width(&quick_ctx());
        assert_eq!(res.points.len(), WIDTH_KINDS.len() * WIDTHS.len());
        assert!(res.to_report().passed());
    }

    #[test]
    fn hybrid_policy_reduces_shipped_error() {
        let res = run_hybrid(&quick_ctx());
        assert_eq!(res.points.len(), HYBRID_GRID.len());
        let report = res.to_report();
        assert!(report.passed(), "failed: {:?}", report.failed_checks());
    }

    #[test]
    fn reports_are_deterministic_across_thread_budgets() {
        let serial = ExperimentContext::new(RunConfig {
            threads: 1,
            ..RunConfig::quick()
        });
        let parallel = ExperimentContext::new(RunConfig {
            threads: 8,
            ..RunConfig::quick()
        });
        assert_eq!(run_hybrid(&serial), run_hybrid(&parallel));
        assert_eq!(run_width(&serial), run_width(&parallel));
    }
}
