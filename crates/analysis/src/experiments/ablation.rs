//! `ablation`: what the paper's design choices buy.
//!
//! Two choices are load-bearing in §2–§3 and deserve quantification:
//!
//! 1. **MAJ as a primitive 3-bit gate.** If hardware only offers
//!    CNOT/Toffoli, every MAJ in the recovery circuit decomposes into
//!    three gates (Figure 1), inflating the per-bit budget from
//!    `G = 11` to `G = 23` and the threshold from 1/165 to 1/759.
//! 2. **SWAP3 as a primitive.** §3 counts two SWAPs as one three-bit
//!    SWAP3; without it the 1D budget grows from `G = 40` to `G = 67`
//!    and the threshold drops from 1/2340 to 1/6633.
//!
//! Both ablations are built, exhaustively verified (the decomposed
//! recovery is still single-fault tolerant) and measured.

use super::RunConfig;
use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{sci, Check, Report, Table};
use crate::stats::ErrorEstimate;
use rft_core::ftcheck::{transversal_cycle, CycleSpec};
use rft_core::threshold::GateBudget;
use rft_revsim::circuit::Circuit;
use rft_revsim::gate::Gate;
use rft_revsim::noise::UniformNoise;
use rft_revsim::op::Op;
use rft_revsim::permutation::Permutation;
use rft_revsim::wire::{w, Wire};
use serde::{Deserialize, Serialize};

/// Appends `MAJ(a,b,c)` as its Figure 1 decomposition.
fn push_maj_decomposed(c: &mut Circuit, a: Wire, b: Wire, cc: Wire) {
    c.cnot(a, b).cnot(a, cc).toffoli(b, cc, a);
}

/// Appends `MAJ⁻¹(a,b,c)` as the inverted Figure 1 decomposition.
fn push_maj_inv_decomposed(c: &mut Circuit, a: Wire, b: Wire, cc: Wire) {
    c.toffoli(b, cc, a).cnot(a, cc).cnot(a, b);
}

/// The Figure 2 recovery with every MAJ-family gate decomposed into
/// CNOT/Toffoli — 2 inits + 18 gates = 20 operations.
pub fn decomposed_recovery() -> Circuit {
    let mut c = Circuit::new(9);
    c.init(&[w(3), w(4), w(5)]).init(&[w(6), w(7), w(8)]);
    push_maj_inv_decomposed(&mut c, w(0), w(3), w(6));
    push_maj_inv_decomposed(&mut c, w(1), w(4), w(7));
    push_maj_inv_decomposed(&mut c, w(2), w(5), w(8));
    push_maj_decomposed(&mut c, w(0), w(1), w(2));
    push_maj_decomposed(&mut c, w(3), w(4), w(5));
    push_maj_decomposed(&mut c, w(6), w(7), w(8));
    c
}

/// The §2.2 cycle with decomposed recoveries: transversal gate + three
/// 20-op recoveries.
pub fn decomposed_cycle(gate: &Gate) -> CycleSpec {
    let mut circuit = Circuit::new(27);
    let tile_wire = |tile: usize, q: u32| w((tile * 9) as u32 + q);
    for k in 0..3u32 {
        let map = [tile_wire(0, k), tile_wire(1, k), tile_wire(2, k)];
        circuit.push(Op::Gate(gate.remap(&map)));
    }
    let recovery = decomposed_recovery();
    for tile in 0..3 {
        let map: Vec<Wire> = (0..9).map(|q| tile_wire(tile, q)).collect();
        circuit.append_mapped(&recovery, &map);
    }
    let mut logical = Circuit::new(3);
    logical.push(Op::Gate(*gate));
    let perm = Permutation::of_circuit(&logical).expect("3-bit gate");
    let inputs = (0..3)
        .map(|t| [tile_wire(t, 0), tile_wire(t, 1), tile_wire(t, 2)])
        .collect();
    let outputs = (0..3)
        .map(|t| [tile_wire(t, 0), tile_wire(t, 3), tile_wire(t, 6)])
        .collect();
    CycleSpec::new(circuit, inputs, outputs, perm)
}

/// One ablation row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant name.
    pub name: String,
    /// Per-encoded-bit budget G.
    pub g_ops: u32,
    /// Analytic threshold.
    pub threshold: f64,
    /// Whether the exhaustive single-fault sweep passes.
    pub fault_tolerant: Option<bool>,
    /// Measured cycle error at the probe rate (where applicable).
    pub mc: Option<ErrorEstimate>,
}

/// Results of the ablation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Probe rate for the Monte-Carlo comparison.
    pub probe_g: f64,
    /// Variants compared.
    pub rows: Vec<AblationRow>,
}

/// Registry entry: the `ablation` experiment.
pub struct AblationExperiment;

impl Experiment for AblationExperiment {
    fn id(&self) -> &'static str {
        "ablation"
    }

    fn title(&self) -> &'static str {
        "Ablations — what the MAJ and SWAP3 primitives buy"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["mc", "exact", "ablation"]
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Report {
        run_ctx(ctx).to_report()
    }
}

/// Runs the ablations.
pub fn run(cfg: &RunConfig) -> AblationResult {
    run_ctx(&mut ExperimentContext::new(*cfg))
}

/// [`run`] on an explicit context: the two Monte-Carlo probes run
/// concurrently through the cached engines.
pub fn run_ctx(ctx: &mut ExperimentContext) -> AblationResult {
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let probe_g = 1.0 / 165.0;
    let noise = UniformNoise::new(probe_g);

    // Primitive MAJ (the paper's design).
    let primitive = transversal_cycle(&gate);
    let sweep_p = primitive.sweep_single_faults();

    // Decomposed MAJ ablation.
    let decomposed = decomposed_cycle(&gate);
    decomposed
        .verify_ideal()
        .expect("decomposed cycle must be correct");
    let sweep_d = decomposed.sweep_single_faults();

    let specs = [&primitive, &decomposed];
    let estimates = ctx.run_parallel(specs.len(), |i, share| {
        let opts = if i == 0 {
            share.options()
        } else {
            share.options().salt(0xD)
        };
        ctx.estimate_cycle(specs[i], &noise, &opts)
    });
    let (mc_p, mc_d) = (estimates[0], estimates[1]);

    let budget_decomposed = GateBudget::new(23).expect("valid budget");
    let budget_1d_swaps = GateBudget::new(67).expect("valid budget");

    let rows = vec![
        AblationRow {
            name: "MAJ primitive (paper, G = 11)".into(),
            g_ops: 11,
            threshold: GateBudget::NONLOCAL_WITH_INIT.threshold(),
            fault_tolerant: Some(sweep_p.is_fault_tolerant()),
            mc: Some(mc_p),
        },
        AblationRow {
            name: "MAJ decomposed to CNOT/Toffoli (G = 23)".into(),
            g_ops: 23,
            threshold: budget_decomposed.threshold(),
            fault_tolerant: Some(sweep_d.is_fault_tolerant()),
            mc: Some(mc_d),
        },
        AblationRow {
            name: "1D with SWAP3 primitive (paper, G = 40)".into(),
            g_ops: 40,
            threshold: GateBudget::LOCAL_1D_WITH_INIT.threshold(),
            fault_tolerant: None,
            mc: None,
        },
        AblationRow {
            name: "1D with bare SWAPs only (G = 67)".into(),
            g_ops: 67,
            threshold: budget_1d_swaps.threshold(),
            fault_tolerant: None,
            mc: None,
        },
    ];
    AblationResult { probe_g, rows }
}

impl AblationResult {
    /// Whether the ablations confirm the design choices: the primitive-MAJ
    /// cycle is FT and beats the decomposed one under noise, and the SWAP3
    /// primitive buys a ≈2.8× threshold factor in 1D.
    pub fn confirms_design(&self) -> bool {
        let ft_ok =
            self.rows[0].fault_tolerant == Some(true) && self.rows[1].fault_tolerant == Some(true);
        let mc_ok = match (&self.rows[0].mc, &self.rows[1].mc) {
            (Some(p), Some(d)) => d.failures < 10 || d.rate >= p.rate * 0.9,
            _ => false,
        };
        let swap3_factor = self.rows[2].threshold / self.rows[3].threshold;
        ft_ok && mc_ok && (2.0..4.0).contains(&swap3_factor)
    }

    /// The [`Report`] artifact: the ablation table plus the
    /// design-confirmation checks.
    pub fn to_report(&self) -> Report {
        let exp = &AblationExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            format!(
                "ablations — design-choice costs (MC probe at g = {})",
                sci(self.probe_g)
            ),
            &[
                "variant",
                "G",
                "threshold",
                "1-fault FT",
                "cycle error @probe",
            ],
        );
        for row in &self.rows {
            t.row(&[
                row.name.clone(),
                row.g_ops.to_string(),
                format!("1/{:.0}", 1.0 / row.threshold),
                match row.fault_tolerant {
                    Some(true) => "yes".into(),
                    Some(false) => "NO".into(),
                    None => "-".into(),
                },
                match &row.mc {
                    Some(e) => sci(e.rate),
                    None => "-".into(),
                },
            ]);
        }
        r.table(t);
        r.check(Check::bool(
            "primitive and decomposed cycles are both single-fault tolerant",
            self.rows[0].fault_tolerant == Some(true) && self.rows[1].fault_tolerant == Some(true),
        ))
        .check(Check::bool(
            "primitive MAJ beats the decomposed cycle under noise",
            matches!(
                (&self.rows[0].mc, &self.rows[1].mc),
                (Some(p), Some(d)) if d.failures < 10 || d.rate >= p.rate * 0.9
            ),
        ))
        .check(Check::approx(
            "SWAP3 primitive threshold factor in 1D",
            self.rows[2].threshold / self.rows[3].threshold,
            2.8,
            1.0,
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposed_recovery_structure() {
        let c = decomposed_recovery();
        assert_eq!(c.len(), 20); // 2 inits + 6 × 3 gates
        assert_eq!(c.stats().init_ops(), 2);
        assert_eq!(c.stats().maj_family(), 0, "no MAJ primitives remain");
    }

    #[test]
    fn decomposed_recovery_still_corrects_single_flips() {
        use rft_revsim::state::BitState;
        let c = decomposed_recovery();
        for bit in [false, true] {
            for flip in 0..3u32 {
                let mut s = BitState::zeros(9);
                for q in 0..3u32 {
                    s.set(w(q), bit);
                }
                s.flip(w(flip));
                c.run(&mut s);
                for q in [0u32, 3, 6] {
                    assert_eq!(s.get(w(q)), bit, "flip {flip} value {bit}");
                }
            }
        }
    }

    #[test]
    fn decomposed_cycle_is_fault_tolerant_but_weaker() {
        let r = run(&RunConfig {
            trials: 6000,
            seed: 3,
            threads: 4,
            ..RunConfig::quick()
        });
        assert!(r.confirms_design(), "{r:#?}");
    }

    #[test]
    fn thresholds_quantify_the_primitive_advantage() {
        let r = run(&RunConfig {
            trials: 500,
            seed: 5,
            threads: 2,
            ..RunConfig::quick()
        });
        // MAJ primitive buys (23·22)/(11·10) = 4.6× threshold.
        let factor = r.rows[0].threshold / r.rows[1].threshold;
        assert!((factor - 4.6).abs() < 0.01, "factor {factor}");
    }

    #[test]
    fn print_renders() {
        run(&RunConfig {
            trials: 300,
            seed: 7,
            threads: 2,
            ..RunConfig::quick()
        })
        .print();
    }
}
