//! `fig4`/`fig5`/`fig6`/`fig7`/`local2d`/`local1d`: §3 — nearest-neighbour
//! schemes. Locality proofs, swap-count reproduction, per-codeword gate
//! budgets, analytic thresholds, the exhaustive-sweep first-order
//! coefficients (reproduction finding), and a Monte-Carlo comparison of
//! non-local vs 2D vs 1D cycle error rates.

use super::RunConfig;
use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{sci, Check, Report, Series, Table};
use crate::stats::ErrorEstimate;
use crate::sweep::{find_crossing, log_grid};
use rft_core::ftcheck::transversal_cycle;
use rft_core::mixed::mixed_threshold;
use rft_core::threshold::GateBudget;
use rft_locality::layout1d::{build_cycle_1d, build_recovery_1d, interleave_1d, Tile1D};
use rft_locality::layout2d::{build_cycle_2d, build_recovery_row, InterleaveScheme};
use rft_revsim::circuit::Circuit;
use rft_revsim::gate::Gate;
use rft_revsim::noise::UniformNoise;
use rft_revsim::wire::w;
use serde::{Deserialize, Serialize};

/// Summary of one architecture's cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSummary {
    /// Architecture name.
    pub name: String,
    /// Total ops in one cycle.
    pub cycle_ops: usize,
    /// Worst per-codeword audited op count.
    pub worst_codeword_ops: usize,
    /// Paper's G for this architecture (with init).
    pub paper_g: u32,
    /// Analytic threshold 1/(3·C(G,2)) from the paper's G.
    pub paper_threshold: f64,
    /// Whether the lattice locality check passes (non-local arch: trivially).
    pub local: bool,
    /// First-order fault coefficient from the exhaustive sweep
    /// (0 = exactly single-fault tolerant).
    pub first_order: f64,
    /// Monte-Carlo cycle error estimates at the probe rates.
    pub mc: Vec<(f64, ErrorEstimate)>,
}

/// Results of the §3 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalResult {
    /// Non-local, 2D (perpendicular), 1D.
    pub archs: Vec<ArchSummary>,
    /// Figure 6 swap schedule per move (paper: 8,7,6,10,8,6).
    pub fig6_per_move: Vec<usize>,
    /// Figure 6 total swaps (paper: 45).
    pub fig6_total: usize,
    /// Figure 7 recovery op count (paper: 13).
    pub fig7_ops: usize,
    /// 2D recovery locality: all straight-line triples, zero swaps.
    pub fig4_recovery_local: bool,
    /// Analytic threshold table (paper values).
    pub thresholds: Vec<(String, u32, f64)>,
    /// Measured single-cycle pseudo-thresholds per architecture
    /// (crossing of cycle error with g), same order as `archs`.
    pub measured_thresholds: Vec<Option<f64>>,
    /// Semi-empirical §3.3 check: ρ(k=3)/ρ₂ recomputed from the *measured*
    /// 1D/2D thresholds (paper's analytic value: 0.77).
    pub semi_empirical_ratio_27: Option<f64>,
}

/// Registry entry: the `local` experiment.
pub struct LocalExperiment;

impl Experiment for LocalExperiment {
    fn id(&self) -> &'static str {
        "local"
    }

    fn title(&self) -> &'static str {
        "§3 — nearest-neighbour schemes: locality, budgets, measured thresholds"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["mc", "sweep", "exact", "locality"]
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Report {
        run_ctx(ctx).to_report()
    }
}

/// Runs the §3 reproduction with the given Monte-Carlo budget.
pub fn run(cfg: &RunConfig) -> LocalResult {
    run_ctx(&mut ExperimentContext::new(*cfg))
}

/// [`run`] on an explicit context: probe estimates and the three
/// pseudo-threshold sweeps run cross-point parallel through the cached
/// engines.
pub fn run_ctx(ctx: &mut ExperimentContext) -> LocalResult {
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    // Probe rates: around the 2D threshold so all three architectures show
    // distinguishable error rates.
    let probes = [1.0 / 1000.0, 1.0 / 273.0, 1.0 / 108.0];

    let mc_for = |spec: &rft_core::ftcheck::CycleSpec, salt: u64| -> Vec<(f64, ErrorEstimate)> {
        let estimates = ctx.run_parallel(probes.len(), |i, share| {
            let g = probes[i];
            ctx.estimate_cycle(
                spec,
                &UniformNoise::new(g),
                &share.options().salt(salt ^ g.to_bits()),
            )
        });
        probes.iter().copied().zip(estimates).collect()
    };

    // Non-local (§2.2).
    let nonlocal_spec = transversal_cycle(&gate);
    let nonlocal_sweep = nonlocal_spec.sweep_single_faults();
    let nonlocal = ArchSummary {
        name: "non-local (§2.2)".into(),
        cycle_ops: nonlocal_spec.circuit().len(),
        worst_codeword_ops: 11,
        paper_g: 11,
        paper_threshold: GateBudget::NONLOCAL_WITH_INIT.threshold(),
        local: false,
        first_order: nonlocal_sweep.first_order_worst,
        mc: mc_for(&nonlocal_spec, 0),
    };

    // 2D perpendicular (§3.1).
    let cycle2d = build_cycle_2d(&gate, InterleaveScheme::Perpendicular);
    let spec2d = cycle2d.to_cycle_spec(&gate);
    let sweep2d = spec2d.sweep_single_faults();
    let report2d = cycle2d.lattice.check_circuit(&cycle2d.circuit);
    let audit2d = cycle2d.per_codeword_budget();
    let arch2d = ArchSummary {
        name: "2D perpendicular (§3.1)".into(),
        cycle_ops: cycle2d.circuit.len(),
        worst_codeword_ops: *audit2d.iter().max().unwrap(),
        paper_g: 16,
        paper_threshold: GateBudget::LOCAL_2D_WITH_INIT.threshold(),
        local: report2d.is_local(),
        first_order: sweep2d.first_order_worst,
        mc: mc_for(&spec2d, 0x2D),
    };

    // 1D (§3.2).
    let cycle1d = build_cycle_1d(&gate);
    let spec1d = cycle1d.to_cycle_spec(&gate);
    let sweep1d = spec1d.sweep_single_faults();
    let report1d = cycle1d.lattice.check_circuit(&cycle1d.circuit);
    let audit1d = cycle1d.audit();
    let arch1d = ArchSummary {
        name: "1D (§3.2)".into(),
        cycle_ops: cycle1d.circuit.len(),
        worst_codeword_ops: *audit1d.ops_touching.iter().max().unwrap(),
        paper_g: 40,
        paper_threshold: GateBudget::LOCAL_1D_WITH_INIT.threshold(),
        local: report1d.is_local(),
        first_order: sweep1d.first_order_worst,
        mc: mc_for(&spec1d, 0x1D),
    };

    // Figure 6 interleave counts.
    let tiles = [Tile1D::new(0), Tile1D::new(9), Tile1D::new(18)];
    let mut scratch = Circuit::new(27);
    let (fig6_cost, _) = interleave_1d(&mut scratch, &tiles);

    // Figure 7 recovery.
    let (fig7, _, _) = build_recovery_1d();

    // Figure 4: 2D recovery needs no transport.
    let (rec2d, lattice2d, _) = build_recovery_row(1);
    let rep = lattice2d.check_circuit(&rec2d);
    let fig4_recovery_local =
        rep.is_local() && rep.local_bend == 0 && rec2d.stats().swap_family() == 0;

    let thresholds = vec![
        (
            "non-local, no init".into(),
            9,
            GateBudget::NONLOCAL_NO_INIT.threshold(),
        ),
        (
            "non-local, with init".into(),
            11,
            GateBudget::NONLOCAL_WITH_INIT.threshold(),
        ),
        (
            "2D, no init".into(),
            14,
            GateBudget::LOCAL_2D_NO_INIT.threshold(),
        ),
        (
            "2D, with init".into(),
            16,
            GateBudget::LOCAL_2D_WITH_INIT.threshold(),
        ),
        (
            "1D, no init".into(),
            38,
            GateBudget::LOCAL_1D_NO_INIT.threshold(),
        ),
        (
            "1D, with init".into(),
            40,
            GateBudget::LOCAL_1D_WITH_INIT.threshold(),
        ),
    ];

    // Measured pseudo-thresholds: sweep the single-cycle error of each
    // architecture and find its crossing with g.
    let crossing_for = |spec: &rft_core::ftcheck::CycleSpec, lo: f64, salt: u64| {
        let grid = log_grid(lo, 0.25, 10);
        let points = ctx.sweep(&grid, |g, share| {
            ctx.estimate_cycle(
                spec,
                &UniformNoise::new(g),
                &share.options().salt(salt ^ g.to_bits()),
            )
        });
        find_crossing(&points, |g| g)
    };
    let measured_thresholds = vec![
        crossing_for(&nonlocal_spec, 2e-3, 0xC0),
        crossing_for(&spec2d, 2e-3, 0xC1),
        crossing_for(&spec1d, 5e-4, 0xC2),
    ];
    let semi_empirical_ratio_27 = match (measured_thresholds[1], measured_thresholds[2]) {
        (Some(rho2), Some(rho1)) if rho1 <= rho2 => Some(mixed_threshold(rho1, rho2, 3) / rho2),
        _ => None,
    };

    LocalResult {
        archs: vec![nonlocal, arch2d, arch1d],
        fig6_per_move: fig6_cost.per_move.clone(),
        fig6_total: fig6_cost.total_swaps,
        fig7_ops: fig7.len(),
        fig4_recovery_local,
        thresholds,
        measured_thresholds,
        semi_empirical_ratio_27,
    }
}

impl LocalResult {
    /// Whether the published structural counts all reproduce.
    pub fn structure_ok(&self) -> bool {
        self.fig6_per_move == vec![8, 7, 6, 10, 8, 6]
            && self.fig6_total == 45
            && self.fig7_ops == 13
            && self.fig4_recovery_local
    }

    /// Whether MC error rates order as the thresholds predict
    /// (1D ≥ 2D ≥ non-local at every probe rate with observed failures).
    pub fn mc_ordering_ok(&self) -> bool {
        let get = |i: usize| &self.archs[i].mc;
        get(0)
            .iter()
            .zip(get(1))
            .zip(get(2))
            .all(|(((_, nl), (_, d2)), (_, d1))| {
                if nl.failures < 5 || d2.failures < 5 || d1.failures < 5 {
                    return true; // not resolvable at this budget
                }
                d1.rate >= d2.rate * 0.7 && d2.rate >= nl.rate * 0.7
            })
    }

    /// The [`Report`] artifact: all §3 tables, the probe series and the
    /// structural/ordering checks.
    pub fn to_report(&self) -> Report {
        let exp = &LocalExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            "§3 — analytic thresholds (paper values reproduced)",
            &["scheme", "G", "ρ = 1/(3·C(G,2))", "1/ρ"],
        );
        for (name, g, rho) in &self.thresholds {
            t.row(&[
                name.clone(),
                g.to_string(),
                sci(*rho),
                format!("{:.0}", 1.0 / rho),
            ]);
        }
        r.table(t);

        r.note(format!(
            "Figure 4: 2D tile recovery fully local, straight lines only, zero SWAPs: {}",
            self.fig4_recovery_local
        ));
        r.note(format!(
            "Figure 6: interleave swaps per move {:?} (paper 8,7,6,10,8,6), total {} (paper 45)",
            self.fig6_per_move, self.fig6_total
        ));
        r.note(format!(
            "Figure 7: 1D recovery ops = {} (paper 13)",
            self.fig7_ops
        ));

        let mut a = Table::new(
            "§3 — cycle audits & exhaustive fault sweeps",
            &[
                "architecture",
                "cycle ops",
                "worst-codeword G",
                "paper G",
                "local",
                "1st-order coeff",
            ],
        );
        for arch in &self.archs {
            a.row(&[
                arch.name.clone(),
                arch.cycle_ops.to_string(),
                arch.worst_codeword_ops.to_string(),
                arch.paper_g.to_string(),
                if arch.local { "yes" } else { "n/a" }.to_string(),
                format!("{:.3}", arch.first_order),
            ]);
        }
        r.table(a);

        let mut m = Table::new(
            "§3 — Monte-Carlo cycle error rates (lower is better)",
            &["g", "non-local", "2D", "1D"],
        );
        for i in 0..self.archs[0].mc.len() {
            m.row(&[
                sci(self.archs[0].mc[i].0),
                sci(self.archs[0].mc[i].1.rate),
                sci(self.archs[1].mc[i].1.rate),
                sci(self.archs[2].mc[i].1.rate),
            ]);
        }
        r.table(m);
        for arch in &self.archs {
            r.series(Series::new(
                format!("cycle error — {}", arch.name),
                "g",
                "cycle error rate",
                arch.mc.iter().map(|&(g, e)| (g, e.rate)).collect(),
            ));
        }

        let mut mt = Table::new(
            "§3 — measured single-cycle pseudo-thresholds (analytic ρ is a lower bound)",
            &["architecture", "analytic ρ (paper)", "measured crossing"],
        );
        let analytic = [
            GateBudget::NONLOCAL_WITH_INIT.threshold(),
            GateBudget::LOCAL_2D_WITH_INIT.threshold(),
            GateBudget::LOCAL_1D_WITH_INIT.threshold(),
        ];
        for ((arch, rho), measured) in self
            .archs
            .iter()
            .zip(analytic)
            .zip(&self.measured_thresholds)
        {
            mt.row(&[
                arch.name.clone(),
                format!("1/{:.0}", 1.0 / rho),
                match measured {
                    Some(g) => format!("{} = 1/{:.0}", sci(*g), 1.0 / g),
                    None => "not bracketed".into(),
                },
            ]);
        }
        r.table(mt);
        if let Some(ratio) = self.semi_empirical_ratio_27 {
            r.note(format!(
                "semi-empirical §3.3: ρ(k=3)/ρ₂ from *measured* thresholds = {ratio:.2} \
                 (analytic Table 2 value 0.77)"
            ));
        }
        r.check(Check::bool(
            "published structural counts reproduce (Figs 4, 6, 7)",
            self.structure_ok(),
        ))
        .check(Check::bool(
            "MC error rates order as thresholds predict (1D ≥ 2D ≥ non-local)",
            self.mc_ordering_ok(),
        ))
        .check(Check::bool(
            "non-local and 2D cycles are exactly single-fault tolerant",
            self.archs[0].first_order == 0.0 && self.archs[1].first_order == 0.0,
        ))
        .check(Check::bool(
            "1D cycle has a nonzero first-order coefficient (reproduction finding)",
            self.archs[2].first_order > 0.0,
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_reproduces_paper() {
        let r = run(&RunConfig {
            trials: 1000,
            seed: 17,
            threads: 4,
            ..RunConfig::quick()
        });
        assert!(r.structure_ok());
        // Non-local and 2D are exactly fault tolerant; 1D is the finding.
        assert_eq!(r.archs[0].first_order, 0.0);
        assert_eq!(r.archs[1].first_order, 0.0);
        assert!(r.archs[2].first_order > 0.0);
    }

    #[test]
    fn mc_ordering_holds() {
        let r = run(&RunConfig {
            trials: 4000,
            seed: 19,
            threads: 4,
            ..RunConfig::quick()
        });
        assert!(r.mc_ordering_ok());
    }

    #[test]
    fn print_renders() {
        run(&RunConfig {
            trials: 300,
            seed: 23,
            threads: 2,
            ..RunConfig::quick()
        })
        .print();
    }
}
