//! `blowup`: §2.3 — gate and bit blow-up of concatenation, measured from
//! the compiler against the closed forms `Γ_L = (3(G−2))^L`, `S_L = 9^L`,
//! plus the paper's worked example (g = ρ/10, T = 10⁶ ⇒ L = 2, 441 gates,
//! 81 bits).

use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{Check, Report, Series, Table};
use rft_core::concat::{measure_gate_cost, GateCost};
use rft_core::threshold::GateBudget;
use serde::{Deserialize, Serialize};

/// One row of the blow-up comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlowupRow {
    /// Concatenation level.
    pub level: u8,
    /// Measured ops per FT gate.
    pub measured_ops: usize,
    /// `(3(G−2))^L` with `G = 11`.
    pub formula_g11: f64,
    /// `(3(G−2))^L` with `G = 9`.
    pub formula_g9: f64,
    /// Measured wires per logical bit.
    pub measured_wires: usize,
    /// `9^L`.
    pub formula_wires: f64,
    /// Measured cycle depth.
    pub depth: usize,
}

/// Results of the §2.3 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlowupResult {
    /// Levels 0..=3 measured against the formulas.
    pub rows: Vec<BlowupRow>,
    /// Worked example: required level for T = 10⁶ at g = ρ/10 (paper: 2).
    pub worked_level: u32,
    /// Worked example gate factor (paper: 441).
    pub worked_gate_factor: f64,
    /// Worked example size factor (paper: 81).
    pub worked_size_factor: f64,
    /// Unprotected module size limit at the same g (paper: ~1000 gates).
    pub unprotected_limit: f64,
}

/// Registry entry: the `blowup` experiment.
pub struct BlowupExperiment;

impl Experiment for BlowupExperiment {
    fn id(&self) -> &'static str {
        "blowup"
    }

    fn title(&self) -> &'static str {
        "§2.3 — gate/bit blow-up of concatenation vs closed forms"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["exact", "overhead"]
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Report {
        run().to_report()
    }
}

/// Runs the blow-up measurements.
pub fn run() -> BlowupResult {
    let rows = (0..=3u8)
        .map(|level| {
            let GateCost {
                ops,
                wires_per_bit,
                depth,
                ..
            } = measure_gate_cost(level);
            BlowupRow {
                level,
                measured_ops: ops,
                formula_g11: GateBudget::NONLOCAL_WITH_INIT.gate_blowup(level as u32),
                formula_g9: GateBudget::NONLOCAL_NO_INIT.gate_blowup(level as u32),
                measured_wires: wires_per_bit,
                formula_wires: GateBudget::size_blowup(level as u32),
                depth,
            }
        })
        .collect();
    let budget = GateBudget::NONLOCAL_NO_INIT;
    let g = budget.threshold() / 10.0;
    let overhead = budget
        .module_overhead(g, 1e6)
        .expect("valid rate")
        .expect("below threshold");
    BlowupResult {
        rows,
        worked_level: overhead.level,
        worked_gate_factor: overhead.gate_factor,
        worked_size_factor: overhead.size_factor,
        unprotected_limit: 1.0 / g,
    }
}

impl BlowupResult {
    /// Whether the worked example reproduces the paper's numbers.
    pub fn worked_example_ok(&self) -> bool {
        self.worked_level == 2
            && (self.worked_gate_factor - 441.0).abs() < 1e-9
            && (self.worked_size_factor - 81.0).abs() < 1e-9
    }

    /// The [`Report`] artifact: the blow-up table, machine-readable
    /// series and worked-example checks.
    pub fn to_report(&self) -> Report {
        let exp = &BlowupExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            "§2.3 — circuit blow-up (measured vs closed form)",
            &[
                "L",
                "ops/gate",
                "(3·9)^L",
                "(3·7)^L",
                "wires/bit",
                "9^L",
                "depth",
            ],
        );
        for row in &self.rows {
            t.row(&[
                row.level.to_string(),
                row.measured_ops.to_string(),
                format!("{:.0}", row.formula_g11),
                format!("{:.0}", row.formula_g9),
                row.measured_wires.to_string(),
                format!("{:.0}", row.formula_wires),
                row.depth.to_string(),
            ]);
        }
        r.table(t);
        r.series(Series::new(
            "measured ops per FT gate",
            "level",
            "ops",
            self.rows
                .iter()
                .map(|row| (row.level as f64, row.measured_ops as f64))
                .collect(),
        ));
        r.series(Series::new(
            "measured wires per logical bit",
            "level",
            "wires",
            self.rows
                .iter()
                .map(|row| (row.level as f64, row.measured_wires as f64))
                .collect(),
        ));
        r.note(format!(
            "worked example (g = ρ/10, T = 10⁶): L = {} (paper 2), gate ×{:.0} (paper 441), \
             bits ×{:.0} (paper 81); unprotected limit ≈ {:.0} gates (paper ~1000)",
            self.worked_level,
            self.worked_gate_factor,
            self.worked_size_factor,
            self.unprotected_limit
        ));
        r.check(Check::eq("worked-example level", self.worked_level, 2))
            .check(Check::approx(
                "worked-example gate factor",
                self.worked_gate_factor,
                441.0,
                1e-9,
            ))
            .check(Check::approx(
                "worked-example size factor",
                self.worked_size_factor,
                81.0,
                1e-9,
            ))
            .check(Check::bool(
                "measured ops never exceed the uniform formula",
                self.rows
                    .iter()
                    .all(|row| row.measured_ops as f64 <= row.formula_g11 + 1e-9),
            ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example_matches_paper() {
        let r = run();
        assert!(r.worked_example_ok());
        assert!((r.unprotected_limit - 1080.0).abs() < 1.0);
    }

    #[test]
    fn measured_never_exceeds_uniform_formula() {
        for row in run().rows {
            assert!(
                row.measured_ops as f64 <= row.formula_g11 + 1e-9,
                "level {}: {} > {}",
                row.level,
                row.measured_ops,
                row.formula_g11
            );
            assert_eq!(row.measured_wires as f64, row.formula_wires);
        }
    }

    #[test]
    fn print_renders() {
        run().print();
    }
}
