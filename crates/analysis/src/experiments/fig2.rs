//! `fig2` / `fig3`: the error-recovery circuit and the concatenation
//! structure — the paper's central fault-tolerance claims, verified by
//! exhaustion rather than sampling.

use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{Check, Report, Series, Table};
use rft_core::concat::measure_gate_cost;
use rft_core::ftcheck::{transversal_cycle, CycleSpec};
use rft_core::recovery::{recovery_circuit, DATA_IN, DATA_OUT, E_NO_INIT, E_WITH_INIT};
use rft_revsim::gate::Gate;
use rft_revsim::permutation::Permutation;
use rft_revsim::wire::w;
use serde::{Deserialize, Serialize};

/// One verified circuit's sweep summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Circuit description.
    pub name: String,
    /// Operations in the circuit.
    pub ops: usize,
    /// Single-fault plans enumerated.
    pub plans: usize,
    /// Total runs (plans × inputs).
    pub runs: usize,
    /// Worst output-codeword error over all runs.
    pub max_codeword_error: u32,
    /// Whether single-fault tolerance holds exactly.
    pub fault_tolerant: bool,
    /// Whether some *pair* of faults defeats the circuit (tightness).
    pub double_fault_defeats: bool,
}

/// Results of the Figure 2 / Figure 3 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Sweeps of the recovery circuit and the full §2.2 cycle.
    pub sweeps: Vec<SweepSummary>,
    /// Recovery op counts: (with init, without init) = paper's (8, 6).
    pub e_ops: (usize, usize),
    /// Figure 3 structure: measured ops for one FT gate at levels 1..=3.
    pub gamma_measured: Vec<(u8, usize)>,
}

fn summarize(name: &str, spec: &CycleSpec) -> SweepSummary {
    spec.verify_ideal().expect("ideal run must be clean");
    let sweep = spec.sweep_single_faults();
    SweepSummary {
        name: name.to_string(),
        ops: spec.circuit().len(),
        plans: sweep.plans,
        runs: sweep.runs,
        max_codeword_error: sweep.max_codeword_error,
        fault_tolerant: sweep.is_fault_tolerant(),
        double_fault_defeats: spec.find_double_fault_failure().is_some(),
    }
}

/// Registry entry: the `fig2` experiment.
pub struct Fig2Experiment;

impl Experiment for Fig2Experiment {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "Figures 2 & 3 — recovery circuit and concatenation, verified by exhaustion"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["exact", "fault-tolerance"]
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Report {
        run().to_report()
    }
}

/// Runs the exhaustive verification of Figure 2 (and the §2.2 cycle).
pub fn run() -> Fig2Result {
    let recovery_spec = CycleSpec::new(
        recovery_circuit(),
        vec![DATA_IN],
        vec![DATA_OUT],
        Permutation::identity(1),
    );
    let toffoli = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let cycle_spec = transversal_cycle(&toffoli);

    let sweeps = vec![
        summarize("Figure 2 recovery (1 codeword)", &recovery_spec),
        summarize(
            "§2.2 cycle: transversal Toffoli + 3 recoveries",
            &cycle_spec,
        ),
    ];
    let gamma_measured = (1..=3).map(|l| (l, measure_gate_cost(l).ops)).collect();
    Fig2Result {
        sweeps,
        e_ops: (E_WITH_INIT, E_NO_INIT),
        gamma_measured,
    }
}

impl Fig2Result {
    /// Whether the paper's FT claims all verified.
    pub fn all_ok(&self) -> bool {
        self.sweeps
            .iter()
            .all(|s| s.fault_tolerant && s.double_fault_defeats)
            && self.e_ops == (8, 6)
    }

    /// The [`Report`] artifact: verification tables plus one check per
    /// fault-tolerance claim.
    pub fn to_report(&self) -> Report {
        let exp = &Fig2Experiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            "Figure 2 — exhaustive single-fault verification",
            &[
                "circuit",
                "ops",
                "plans",
                "runs",
                "max err",
                "1-fault FT",
                "2 faults defeat",
            ],
        );
        for s in &self.sweeps {
            t.row(&[
                s.name.clone(),
                s.ops.to_string(),
                s.plans.to_string(),
                s.runs.to_string(),
                s.max_codeword_error.to_string(),
                if s.fault_tolerant { "yes" } else { "NO" }.to_string(),
                if s.double_fault_defeats { "yes" } else { "no" }.to_string(),
            ]);
        }
        r.table(t);
        let mut g = Table::new(
            "Figure 3 — ops per FT gate (measured vs (3(G−2))^L)",
            &["level", "measured Γ", "formula (G=11)", "formula (G=9)"],
        );
        for &(level, ops) in &self.gamma_measured {
            g.row(&[
                level.to_string(),
                ops.to_string(),
                (27f64.powi(level as i32)).to_string(),
                (21f64.powi(level as i32)).to_string(),
            ]);
        }
        r.table(g);
        r.series(Series::new(
            "measured ops per FT gate",
            "level",
            "ops",
            self.gamma_measured
                .iter()
                .map(|&(l, ops)| (l as f64, ops as f64))
                .collect(),
        ));
        for s in &self.sweeps {
            r.check(Check::bool(
                format!("{}: exactly single-fault tolerant", s.name),
                s.fault_tolerant,
            ))
            .check(Check::bool(
                format!("{}: some double fault defeats it (tightness)", s.name),
                s.double_fault_defeats,
            ));
        }
        r.check(Check::eq(
            "recovery op count E (with init, without)",
            format!("{:?}", self.e_ops),
            format!("{:?}", (8, 6)),
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_claims_verify() {
        let r = run();
        assert!(r.all_ok());
        // Level-1 gate cost is exactly 27 = 3(1+8).
        assert_eq!(r.gamma_measured[0], (1, 27));
        // Measured level-2 below the uniform-cost formula.
        assert!(r.gamma_measured[1].1 <= 729);
    }

    #[test]
    fn print_renders() {
        run().print();
    }
}
