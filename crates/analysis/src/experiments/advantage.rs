//! `advantage`: §1/§4 — "how large can we make our circuits before we lose
//! any advantage over irreversible computing". For each physical rate the
//! design space gives: the deepest level with O(1) entropy per gate, the
//! largest reliable module at that level, and the entropy per gate compared
//! with the 3/2-bit cost of simulating irreversible logic.

use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{sci, Check, Report, Series, Table};
use rft_core::entropy::{hl_lower, max_level_constant_entropy};
use rft_core::threshold::GateBudget;
use serde::{Deserialize, Serialize};

/// The irreversible baseline: fault-free NAND simulation costs 3/2 bits
/// per gate (footnote 4).
pub const IRREVERSIBLE_BITS_PER_GATE: f64 = 1.5;

/// One design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Physical error rate.
    pub g: f64,
    /// Margin below threshold (ρ/g, G = 11).
    pub threshold_margin: f64,
    /// §4 cap: L ≤ log(1/g)/log(3E) + 1.
    pub max_entropy_level: f64,
    /// Deepest integer level within the cap.
    pub usable_level: u32,
    /// Entropy lower bound per gate at that level (bits).
    pub entropy_bits: f64,
    /// Largest module with ≤ 1 expected failure at that level.
    pub max_module_gates: f64,
    /// Whether the reversible machine still beats 3/2 bits per gate.
    pub beats_irreversible: bool,
}

/// Results of the advantage analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdvantageResult {
    /// Design points across rates.
    pub points: Vec<DesignPoint>,
}

/// Registry entry: the `advantage` experiment.
pub struct AdvantageExperiment;

impl Experiment for AdvantageExperiment {
    fn id(&self) -> &'static str {
        "advantage"
    }

    fn title(&self) -> &'static str {
        "§1/§4 — the reversible-advantage design space"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["exact", "entropy", "design-space"]
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Report {
        run().to_report()
    }
}

/// Runs the design-space analysis.
pub fn run() -> AdvantageResult {
    let budget = GateBudget::NONLOCAL_WITH_INIT;
    let rho = budget.threshold();
    let e_ops = 8.0;
    let points = [rho / 2.0, rho / 10.0, rho / 100.0, 1e-6, 1e-9]
        .iter()
        .map(|&g| {
            let cap = max_level_constant_entropy(g, e_ops);
            let usable_level = cap.floor().max(1.0) as u32;
            let entropy_bits = hl_lower(g, e_ops, usable_level);
            let g_l = budget.error_at_level(g, usable_level).expect("valid rate");
            DesignPoint {
                g,
                threshold_margin: rho / g,
                max_entropy_level: cap,
                usable_level,
                entropy_bits,
                max_module_gates: if g_l > 0.0 { 1.0 / g_l } else { f64::INFINITY },
                beats_irreversible: entropy_bits < IRREVERSIBLE_BITS_PER_GATE,
            }
        })
        .collect();
    AdvantageResult { points }
}

impl AdvantageResult {
    /// Whether cleaner gates strictly widen the advantage window.
    pub fn monotone_in_g(&self) -> bool {
        self.points.windows(2).all(|w| {
            w[1].g < w[0].g
                && w[1].max_entropy_level >= w[0].max_entropy_level
                && w[1].max_module_gates >= w[0].max_module_gates
        })
    }

    /// The [`Report`] artifact: the design-space table, entropy series
    /// and monotonicity checks.
    pub fn to_report(&self) -> Report {
        let exp = &AdvantageExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            "§1/§4 — reversible advantage window (G = 11, E = 8)",
            &[
                "g",
                "ρ/g",
                "L cap (entropy)",
                "L used",
                "bits/gate ≥",
                "max module T",
                "beats 3/2?",
            ],
        );
        for p in &self.points {
            t.row(&[
                sci(p.g),
                format!("{:.1}", p.threshold_margin),
                format!("{:.2}", p.max_entropy_level),
                p.usable_level.to_string(),
                sci(p.entropy_bits),
                if p.max_module_gates.is_finite() {
                    format!("{:.1e}", p.max_module_gates)
                } else {
                    "∞".into()
                },
                if p.beats_irreversible { "yes" } else { "no" }.to_string(),
            ]);
        }
        r.table(t);
        r.series(Series::new(
            "entropy lower bound per gate",
            "g",
            "bits",
            self.points.iter().map(|p| (p.g, p.entropy_bits)).collect(),
        ));
        r.check(Check::bool(
            "cleaner gates strictly widen the advantage window",
            self.monotone_in_g(),
        ))
        .check(Check::bool(
            "smallest-g point beats the 3/2-bit irreversible baseline",
            self.points.last().is_some_and(|p| p.beats_irreversible),
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaner_gates_widen_the_window() {
        let r = run();
        assert!(r.monotone_in_g());
        // At very small g the reversible machine clearly wins.
        assert!(r.points.last().unwrap().beats_irreversible);
    }

    #[test]
    fn near_threshold_advantage_is_marginal() {
        let r = run();
        let near = &r.points[0]; // g = ρ/2
                                 // Shallow entropy cap near threshold (paper: ~2.3 levels at ρ ~ g).
        assert!(near.max_entropy_level < 4.0);
    }

    #[test]
    fn print_renders() {
        run().print();
    }
}
