//! `levelreq`: Equation 3 — the concatenation level needed for a `T`-gate
//! module and the resulting poly-log overhead `O((log T)^{4.75})` /
//! `O((log T)^{3.17})`.

use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{Check, Report, Series, Table};
use crate::stats::linear_slope;
use rft_core::threshold::GateBudget;
use serde::{Deserialize, Serialize};

/// One row of the level-requirement series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelRow {
    /// Module size (gates).
    pub module_gates: f64,
    /// Minimum sufficient level (Eq. 3).
    pub level: u32,
    /// Gate blow-up at that level.
    pub gate_factor: f64,
    /// Size blow-up at that level.
    pub size_factor: f64,
    /// Achieved logical error bound.
    pub achieved: f64,
}

/// Results of the Equation 3 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelReqResult {
    /// The gate budget used (G = 11).
    pub budget_ops: u32,
    /// Physical rate used (ρ/10).
    pub g: f64,
    /// Series over module sizes.
    pub rows: Vec<LevelRow>,
    /// Fitted exponent of gate overhead vs log T (paper: log₂ 27 ≈ 4.75).
    pub fitted_gate_exponent: f64,
    /// Theoretical exponent `log₂(3(G−2))`.
    pub theory_gate_exponent: f64,
    /// Theoretical size exponent `log₂ 9 ≈ 3.17`.
    pub theory_size_exponent: f64,
}

/// Registry entry: the `levelreq` experiment.
pub struct LevelReqExperiment;

impl Experiment for LevelReqExperiment {
    fn id(&self) -> &'static str {
        "levelreq"
    }

    fn title(&self) -> &'static str {
        "Equation 3 — required level and poly-log overhead"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["exact", "overhead"]
    }

    fn run(&self, _ctx: &mut ExperimentContext) -> Report {
        run().to_report()
    }
}

/// Runs the Equation 3 series.
pub fn run() -> LevelReqResult {
    let budget = GateBudget::NONLOCAL_WITH_INIT;
    let g = budget.threshold() / 10.0;
    let sizes: Vec<f64> = (3..=15).map(|e| 10f64.powi(e)).collect();
    let rows: Vec<LevelRow> = sizes
        .iter()
        .map(|&t| {
            let o = budget
                .module_overhead(g, t)
                .expect("valid rate")
                .expect("below threshold");
            LevelRow {
                module_gates: t,
                level: o.level,
                gate_factor: o.gate_factor,
                size_factor: o.size_factor,
                achieved: o.achieved_error,
            }
        })
        .collect();
    // Fit the *continuous-level* overhead (L before ceiling):
    // Γ = (ln(Tρ)/ln(ρ/g))^(log₂ 3(G−2)) — the fit in log-log space
    // against ln(Tρ) recovers the paper's poly-log exponent. The integer-L
    // table above shows the steppy practical cost.
    let rho = budget.threshold();
    let x: Vec<f64> = sizes.iter().map(|&t| (t * rho).ln().ln()).collect();
    let y: Vec<f64> = sizes
        .iter()
        .map(|&t| {
            let level_cont = ((t * rho).ln() / (rho / g).ln()).log2();
            level_cont * (3.0 * (budget.ops() as f64 - 2.0)).ln()
        })
        .collect();
    LevelReqResult {
        budget_ops: budget.ops(),
        g,
        rows,
        fitted_gate_exponent: linear_slope(&x, &y),
        theory_gate_exponent: budget.gate_blowup_exponent(),
        theory_size_exponent: GateBudget::size_blowup_exponent(),
    }
}

impl LevelReqResult {
    /// Whether the fit lands near the theoretical poly-log exponent.
    pub fn exponent_consistent(&self) -> bool {
        (self.fitted_gate_exponent - self.theory_gate_exponent).abs() < 0.05
    }

    /// The [`Report`] artifact: the overhead series and exponent checks.
    pub fn to_report(&self) -> Report {
        let exp = &LevelReqExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        let mut t = Table::new(
            format!(
                "Equation 3 — required level & overhead (G = {}, g = ρ/10)",
                self.budget_ops
            ),
            &["T (gates)", "L", "gate ×", "bit ×", "g_L bound"],
        );
        for row in &self.rows {
            t.row(&[
                format!("{:.0e}", row.module_gates),
                row.level.to_string(),
                format!("{:.0}", row.gate_factor),
                format!("{:.0}", row.size_factor),
                format!("{:.2e}", row.achieved),
            ]);
        }
        r.table(t);
        r.series(Series::new(
            "gate overhead vs module size",
            "T (gates)",
            "gate factor",
            self.rows
                .iter()
                .map(|row| (row.module_gates, row.gate_factor))
                .collect(),
        ));
        r.note(format!(
            "gate-overhead exponent: fitted {:.2}, theory log₂(3(G−2)) = {:.2} (paper 4.75); \
             size exponent theory {:.2} (paper 3.17)",
            self.fitted_gate_exponent, self.theory_gate_exponent, self.theory_size_exponent
        ));
        r.check(Check::approx(
            "fitted gate-overhead exponent vs theory",
            self.fitted_gate_exponent,
            self.theory_gate_exponent,
            0.05,
        ))
        .check(Check::approx(
            "theory gate exponent vs paper 4.75",
            self.theory_gate_exponent,
            4.75,
            0.01,
        ))
        .check(Check::approx(
            "theory size exponent vs paper 3.17",
            self.theory_size_exponent,
            3.17,
            0.01,
        ))
        .check(Check::bool(
            "levels are monotone and sufficient",
            self.rows.windows(2).all(|w| w[1].level >= w[0].level)
                && self
                    .rows
                    .iter()
                    .all(|row| row.achieved <= (1.0 + 1e-9) / row.module_gates),
        ));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_monotone_and_sufficient() {
        let r = run();
        let mut last = 0;
        for row in &r.rows {
            assert!(row.level >= last);
            last = row.level;
            assert!(row.achieved <= 1.0 / row.module_gates * (1.0 + 1e-9));
        }
    }

    #[test]
    fn exponents_match_paper() {
        let r = run();
        assert!((r.theory_gate_exponent - 4.75).abs() < 0.01);
        assert!((r.theory_size_exponent - 3.17).abs() < 0.01);
        assert!(r.exponent_consistent(), "fitted {}", r.fitted_gate_exponent);
    }

    #[test]
    fn print_renders() {
        run().print();
    }
}
