//! `entropy`: §4 — entropy dissipated by fault-tolerant reversible
//! computing. Checks the measured reset entropy of compiled FT cycles
//! against the analytic bounds `g·(3E)^(L−1) ≤ H_L ≤ G̃^L·κ·√g`, and
//! reproduces the worked example `L ≤ log(1/g)/log(3E) + 1 ≈ 2.3`.

use super::RunConfig;
use crate::entropy_meas::measure_reset_entropy;
use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{sci, Check, Report, Series, Table};
use rft_core::concat::FtBuilder;
use rft_core::entropy::{
    h1_upper, hl_lower, hl_upper, kappa, landauer_heat_joules, max_level_constant_entropy,
};
use rft_revsim::gate::Gate;
use rft_revsim::noise::UniformNoise;
use rft_revsim::state::BitState;
use rft_revsim::wire::w;
use serde::{Deserialize, Serialize};

/// One measured point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntropyPoint {
    /// Physical error rate.
    pub g: f64,
    /// Concatenation level.
    pub level: u8,
    /// Measured bits per logical gate.
    pub measured_bits: f64,
    /// §4 lower bound `g·(3E)^(L−1)`.
    pub lower: f64,
    /// §4 upper bound `G̃^L·κ·√g`.
    pub upper: f64,
    /// The tighter pre-relaxation upper bound at L = 1.
    pub h1_tight: f64,
    /// Landauer heat at 300 K for the measured bits (joules).
    pub heat_300k: f64,
}

/// Results of the §4 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyResult {
    /// Measured points across `g` and levels.
    pub points: Vec<EntropyPoint>,
    /// κ constant (paper ≈ 4.33).
    pub kappa: f64,
    /// Worked example `L ≤ 2.3` (g = 10⁻², E = 11).
    pub worked_max_level: f64,
    /// Max levels for a grid of rates (the `O(log 1/g)` growth).
    pub max_level_series: Vec<(f64, f64)>,
}

/// Builds an `n`-cycle FT program (repeated gate) at `level`.
fn program_with_cycles(level: u8, gate: &Gate, cycles: usize) -> rft_core::concat::FtProgram {
    let mut b = FtBuilder::new(level, 3);
    for _ in 0..cycles {
        b.apply(gate);
    }
    b.finish()
}

/// Registry entry: the `entropy` experiment.
pub struct EntropyExperiment;

impl Experiment for EntropyExperiment {
    fn id(&self) -> &'static str {
        "entropy"
    }

    fn title(&self) -> &'static str {
        "§4 — measured reset entropy vs the analytic bounds"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["mc", "entropy"]
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Report {
        run_ctx(ctx).to_report()
    }
}

/// Runs entropy measurements on compiled level-1 and level-2 FT gates.
///
/// Entropy is ejected when an `Init` erases the *previous* cycle's
/// syndromes, so a single cycle from a clean state dissipates nothing. The
/// steady-state per-gate entropy is measured as a difference estimator
/// between a 1-cycle and a 3-cycle program: `(H₃ − H₁) / 2`.
pub fn run(cfg: &RunConfig) -> EntropyResult {
    run_ctx(&mut ExperimentContext::new(*cfg))
}

/// [`run`] on an explicit context: the `(level, g)` measurement grid runs
/// cross-point parallel (each point derives its seed from `(g, level)`,
/// so the schedule cannot change the histograms).
pub fn run_ctx(ctx: &mut ExperimentContext) -> EntropyResult {
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let rates: [f64; 4] = [1e-4, 1e-3, 1e-2, 5e-2];
    let levels = [1u8, 2];
    struct LevelPrograms {
        level: u8,
        short: rft_core::concat::FtProgram,
        long: rft_core::concat::FtProgram,
        input_short: BitState,
        input_long: BitState,
        ops: f64,
    }
    let programs: Vec<LevelPrograms> = levels
        .iter()
        .map(|&level| {
            let short = program_with_cycles(level, &gate, 1);
            let long = program_with_cycles(level, &gate, 3);
            let input_short = short.encode(&BitState::zeros(3));
            let input_long = long.encode(&BitState::zeros(3));
            let ops = short.circuit().len() as f64;
            LevelPrograms {
                level,
                short,
                long,
                input_short,
                input_long,
                ops,
            }
        })
        .collect();
    let grid: Vec<(usize, usize)> = (0..levels.len())
        .flat_map(|li| (0..rates.len()).map(move |ri| (li, ri)))
        .collect();
    let points = ctx.run_parallel(grid.len(), |i, share| {
        let (li, ri) = grid[i];
        let p = &programs[li];
        let (level, g) = (p.level, rates[ri]);
        let trials = if level >= 2 {
            share.trials / 8
        } else {
            share.trials / 2
        }
        .max(200);
        let seed = share.seed ^ g.to_bits() ^ level as u64;
        let noise = UniformNoise::new(g);
        let m_short =
            measure_reset_entropy(p.short.circuit(), &p.input_short, &noise, trials, seed);
        let m_long =
            measure_reset_entropy(p.long.circuit(), &p.input_long, &noise, trials, seed ^ 1);
        let measured_bits = ((m_long.bits_per_run - m_short.bits_per_run) / 2.0).max(0.0);
        // G̃: physical ops per next-level gate — 27 for the level-1
        // cycle; the same multiplier is applied per level in the bound.
        let g_tilde = 27.0;
        EntropyPoint {
            g,
            level,
            measured_bits,
            lower: hl_lower(g, 8.0, level as u32),
            upper: hl_upper(g, g_tilde, level as u32),
            h1_tight: if level == 1 {
                h1_upper(g, p.ops)
            } else {
                f64::NAN
            },
            heat_300k: landauer_heat_joules(measured_bits, 300.0),
        }
    });
    let max_level_series = [1e-2, 1e-3, 1e-4, 1e-6, 1e-8]
        .iter()
        .map(|&g| (g, max_level_constant_entropy(g, 11.0)))
        .collect();
    EntropyResult {
        points,
        kappa: kappa(),
        worked_max_level: max_level_constant_entropy(1e-2, 11.0),
        max_level_series,
    }
}

impl EntropyResult {
    /// Whether every measurement respects the §4 bounds.
    ///
    /// The lower-bound check is applied only where the Monte-Carlo budget
    /// can resolve it (`g ≥ 10⁻³`); below that, a finite histogram cannot
    /// distinguish the tiny per-site entropies from zero.
    pub fn within_bounds(&self) -> bool {
        self.points.iter().all(|p| {
            let upper_ok = p.measured_bits <= p.upper * 1.05;
            let lower_ok = p.g < 1e-3 || p.measured_bits >= p.lower * 0.3 - 1e-12;
            upper_ok && lower_ok
        })
    }

    /// The [`Report`] artifact: measurement tables, per-level series and
    /// the bounds checks.
    pub fn to_report(&self) -> Report {
        let exp = &EntropyExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        r.note(format!("κ = {:.4} (paper ≈ 4.33)", self.kappa));
        let mut t = Table::new(
            "§4 — entropy per FT logical gate: measured vs bounds",
            &[
                "L",
                "g",
                "lower g(3E)^(L−1)",
                "measured bits",
                "upper G̃^L·κ·√g",
                "heat @300K (J)",
            ],
        );
        for p in &self.points {
            t.row(&[
                p.level.to_string(),
                sci(p.g),
                sci(p.lower),
                sci(p.measured_bits),
                sci(p.upper),
                format!("{:.2e}", p.heat_300k),
            ]);
        }
        r.table(t);
        r.note(format!(
            "worked example: g = 10⁻², E = 11 ⇒ L ≤ {:.2} (paper 2.3)",
            self.worked_max_level
        ));
        let mut s = Table::new(
            "§4 — max level with O(1) entropy per gate (O(log 1/g) growth)",
            &["g", "L_max"],
        );
        for (g, l) in &self.max_level_series {
            s.row(&[sci(*g), format!("{l:.2}")]);
        }
        r.table(s);
        for &level in &[1u8, 2] {
            r.series(Series::new(
                format!("measured bits per gate, L = {level}"),
                "g",
                "bits",
                self.points
                    .iter()
                    .filter(|p| p.level == level)
                    .map(|p| (p.g, p.measured_bits))
                    .collect(),
            ));
        }
        r.check(Check::bool(
            "every measurement respects the §4 bounds",
            self.within_bounds(),
        ))
        .check(Check::approx(
            "worked example L ≤ 2.3",
            self.worked_max_level,
            2.3,
            0.05,
        ))
        .check(Check::approx("κ vs paper 4.33", self.kappa, 4.33, 0.01));
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

/// Measures the steady-state entropy of the *bare recovery* on one
/// codeword — the second of two consecutive recovery cycles, whose inits
/// erase the first cycle's syndromes. Used by tests to pin the L = 1
/// scaling cheaply.
pub fn recovery_entropy(g: f64, trials: u64, seed: u64) -> f64 {
    let one = {
        let mut b = FtBuilder::new(1, 1);
        b.recover(0);
        b.finish()
    };
    let two = {
        let mut b = FtBuilder::new(1, 1);
        b.recover(0).recover(0);
        b.finish()
    };
    let noise = UniformNoise::new(g);
    let zero = BitState::zeros(1);
    let h1 =
        measure_reset_entropy(one.circuit(), &one.encode(&zero), &noise, trials, seed).bits_per_run;
    let h2 = measure_reset_entropy(two.circuit(), &two.encode(&zero), &noise, trials, seed ^ 1)
        .bits_per_run;
    (h2 - h1).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_entropy_sits_within_bounds() {
        let r = run(&RunConfig {
            trials: 8000,
            seed: 29,
            threads: 2,
            ..RunConfig::quick()
        });
        assert!(r.within_bounds(), "points: {:#?}", r.points);
    }

    #[test]
    fn worked_example_is_2_3() {
        let r = run(&RunConfig {
            trials: 400,
            seed: 31,
            threads: 2,
            ..RunConfig::quick()
        });
        assert!((r.worked_max_level - 2.3).abs() < 0.05);
    }

    #[test]
    fn entropy_grows_with_level_at_fixed_g() {
        let r = run(&RunConfig {
            trials: 8000,
            seed: 37,
            threads: 2,
            ..RunConfig::quick()
        });
        let l1: Vec<&EntropyPoint> = r.points.iter().filter(|p| p.level == 1).collect();
        let l2: Vec<&EntropyPoint> = r.points.iter().filter(|p| p.level == 2).collect();
        // At the largest g, level 2 dissipates more than level 1.
        let g_max_1 = l1.iter().max_by(|a, b| a.g.total_cmp(&b.g)).unwrap();
        let g_max_2 = l2.iter().max_by(|a, b| a.g.total_cmp(&b.g)).unwrap();
        assert!(g_max_2.measured_bits > g_max_1.measured_bits);
    }

    #[test]
    fn recovery_entropy_scales_with_g() {
        let lo = recovery_entropy(1e-3, 20_000, 41);
        let hi = recovery_entropy(1e-1, 20_000, 41);
        assert!(hi > lo * 10.0, "lo {lo}, hi {hi}");
    }

    #[test]
    fn print_renders() {
        run(&RunConfig {
            trials: 400,
            seed: 43,
            threads: 2,
            ..RunConfig::quick()
        })
        .print();
    }
}
