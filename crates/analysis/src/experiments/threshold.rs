//! `threshold`: §2.2 — Monte-Carlo logical error rate of the level-1 FT
//! cycle versus the analytic Equation 1 bound, and the measured
//! pseudo-threshold against the published ρ = 1/165 (with init errors) and
//! ρ = 1/108 (perfect init).
//!
//! The analytic ρ is a *lower bound* on the true threshold (the paper:
//! "the circuits and threshold values presented here represent a lower
//! bound"), so the measured crossing should sit at or above it.
//!
//! The sweep runs under [`RunConfig`]'s estimator policy (default
//! [`Estimator::Auto`](rft_revsim::engine::Estimator)): the deep points
//! `g ≪ ρ`, where almost every plain-MC trial would execute fault-free,
//! route to the fault-count-stratified rare-event estimator and resolve
//! rates far below what the raw trial budget could otherwise bracket.

use super::RunConfig;
use crate::montecarlo::ConcatMc;
use crate::report::{rate_ci, sci, Table};
use crate::stats::ErrorEstimate;
use crate::sweep::{find_crossing, log_grid, sweep, SweepPoint};
use rft_core::threshold::GateBudget;
use rft_revsim::gate::Gate;
use rft_revsim::noise::{SplitNoise, UniformNoise};
use rft_revsim::wire::w;
use serde::{Deserialize, Serialize};

/// One sweep point with its analytic companion values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// Physical error rate.
    pub g: f64,
    /// Measured per-cycle logical error rate.
    pub logical: f64,
    /// Wilson CI of the raw estimate.
    pub estimate: ErrorEstimate,
    /// Equation 1 bound `3·C(G,2)·g²`.
    pub eq1_bound: f64,
}

/// Results for one noise accounting (with / without init errors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSeries {
    /// Accounting name.
    pub name: String,
    /// Paper gate budget and threshold for this accounting.
    pub budget_ops: u32,
    /// The published analytic threshold.
    pub analytic_threshold: f64,
    /// Sweep points.
    pub points: Vec<ThresholdPoint>,
    /// Measured pseudo-threshold (crossing `g_logical = g`), if bracketed.
    pub measured_crossing: Option<f64>,
}

/// Results of the §2.2 threshold reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdResult {
    /// Series for G = 11 (uniform noise) and G = 9 (perfect init).
    pub series: Vec<ThresholdSeries>,
    /// Cycles per trial used to estimate per-cycle rates.
    pub cycles: usize,
}

/// Runs the threshold sweep with the given Monte-Carlo budget.
pub fn run(cfg: &RunConfig) -> ThresholdResult {
    let cycles = 4usize;
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let mc = ConcatMc::new(1, gate, cycles);

    let make_series = |name: &str, budget: GateBudget, perfect_init: bool, seed: u64| {
        // ρ is a lower bound on the true threshold: the measured crossing
        // sits several times higher, so sweep well past ρ.
        let rho = budget.threshold();
        let grid = log_grid(rho / 8.0, rho * 16.0, 12);
        let points_raw = sweep(&grid, |g| {
            let opts = cfg.options().seed(seed).salt(g.to_bits());
            if perfect_init {
                mc.estimate(&SplitNoise::perfect_init(g), &opts)
            } else {
                mc.estimate(&UniformNoise::new(g), &opts)
            }
        });
        let points: Vec<ThresholdPoint> = points_raw
            .iter()
            .map(|p| ThresholdPoint {
                g: p.g,
                logical: p.estimate.per_cycle(cycles),
                estimate: p.estimate,
                eq1_bound: budget.logical_error_bound(p.g).expect("valid rate"),
            })
            .collect();
        // Crossing of the *per-cycle* rate with g.
        let per_cycle_points: Vec<SweepPoint> = points
            .iter()
            .map(|p| SweepPoint {
                g: p.g,
                estimate: ErrorEstimate {
                    failures: p.estimate.failures,
                    trials: p.estimate.trials,
                    rate: p.logical.max(1e-12),
                    low: p.logical,
                    high: p.logical,
                },
            })
            .collect();
        let measured_crossing = find_crossing(&per_cycle_points, |g| g);
        ThresholdSeries {
            name: name.to_string(),
            budget_ops: budget.ops(),
            analytic_threshold: rho,
            points,
            measured_crossing,
        }
    };

    let series = vec![
        make_series(
            "uniform noise (init counted, G = 11)",
            GateBudget::NONLOCAL_WITH_INIT,
            false,
            cfg.seed,
        ),
        make_series(
            "perfect init (G = 9)",
            GateBudget::NONLOCAL_NO_INIT,
            true,
            cfg.seed ^ 0xABCD,
        ),
    ];
    ThresholdResult { series, cycles }
}

impl ThresholdResult {
    /// Whether every measured crossing is at or above the analytic lower
    /// bound (allowing Monte-Carlo slack).
    pub fn crossings_above_analytic(&self) -> bool {
        self.series.iter().all(|s| match s.measured_crossing {
            Some(g) => g >= s.analytic_threshold * 0.8,
            None => false,
        })
    }

    /// Prints the sweep tables.
    pub fn print(&self) {
        for s in &self.series {
            let mut t = Table::new(
                format!(
                    "§2.2 threshold sweep — {} (ρ = 1/{:.0})",
                    s.name,
                    1.0 / s.analytic_threshold
                ),
                &[
                    "g",
                    "g/ρ",
                    "logical (per cycle)",
                    "raw CI",
                    "Eq.1 bound",
                    "helps?",
                ],
            );
            for p in &s.points {
                t.row(&[
                    sci(p.g),
                    format!("{:.2}", p.g / s.analytic_threshold),
                    sci(p.logical),
                    rate_ci(p.estimate.rate, p.estimate.low, p.estimate.high),
                    sci(p.eq1_bound),
                    if p.logical < p.g { "yes" } else { "no" }.to_string(),
                ]);
            }
            t.print();
            match s.measured_crossing {
                Some(g) => println!(
                    "measured pseudo-threshold ≈ {} = 1/{:.0} (analytic lower bound 1/{:.0})",
                    sci(g),
                    1.0 / g,
                    1.0 / s.analytic_threshold
                ),
                None => println!("no crossing bracketed in the sweep range"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_threshold_sweep_is_sane() {
        let r = run(&RunConfig {
            trials: 1500,
            seed: 7,
            threads: 4,
            ..RunConfig::quick()
        });
        assert_eq!(r.series.len(), 2);
        for s in &r.series {
            // Error rates must be monotone-ish: last point (well above ρ)
            // worse than first point (well below ρ).
            let first = s.points.first().unwrap();
            let last = s.points.last().unwrap();
            assert!(last.logical > first.logical);
            // Below threshold the scheme helps.
            assert!(
                first.logical < first.g * 1.2,
                "{}: at g/ρ = 1/8, logical {} should be ≲ g {}",
                s.name,
                first.logical,
                first.g
            );
        }
    }

    #[test]
    fn print_renders() {
        let r = run(&RunConfig {
            trials: 500,
            seed: 3,
            threads: 2,
            ..RunConfig::quick()
        });
        r.print();
    }
}
