//! `threshold`: §2.2 — Monte-Carlo logical error rate of the level-1 FT
//! cycle versus the analytic Equation 1 bound, and the measured
//! pseudo-threshold against the published ρ = 1/165 (with init errors) and
//! ρ = 1/108 (perfect init).
//!
//! The analytic ρ is a *lower bound* on the true threshold (the paper:
//! "the circuits and threshold values presented here represent a lower
//! bound"), so the measured crossing should sit at or above it.
//!
//! The sweep runs under [`RunConfig`]'s estimator policy (default
//! [`Estimator::Auto`](rft_revsim::engine::Estimator)): the deep points
//! `g ≪ ρ`, where almost every plain-MC trial would execute fault-free,
//! route to the fault-count-stratified rare-event estimator and resolve
//! rates far below what the raw trial budget could otherwise bracket.

use super::RunConfig;
use crate::experiment::{Experiment, ExperimentContext};
use crate::report::{rate_ci, sci, Check, Report, Series, Table};
use crate::stats::ErrorEstimate;
use crate::sweep::{find_crossing, log_grid, SweepPoint};
use rft_core::threshold::GateBudget;
use rft_revsim::gate::Gate;
use rft_revsim::noise::{SplitNoise, UniformNoise};
use rft_revsim::wire::w;
use serde::{Deserialize, Serialize};

/// One sweep point with its analytic companion values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// Physical error rate.
    pub g: f64,
    /// Measured per-cycle logical error rate.
    pub logical: f64,
    /// Wilson CI of the raw estimate.
    pub estimate: ErrorEstimate,
    /// Equation 1 bound `3·C(G,2)·g²`.
    pub eq1_bound: f64,
}

/// Results for one noise accounting (with / without init errors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSeries {
    /// Accounting name.
    pub name: String,
    /// Paper gate budget and threshold for this accounting.
    pub budget_ops: u32,
    /// The published analytic threshold.
    pub analytic_threshold: f64,
    /// Sweep points.
    pub points: Vec<ThresholdPoint>,
    /// Measured pseudo-threshold (crossing `g_logical = g`), if bracketed.
    pub measured_crossing: Option<f64>,
}

/// Results of the §2.2 threshold reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdResult {
    /// Series for G = 11 (uniform noise) and G = 9 (perfect init).
    pub series: Vec<ThresholdSeries>,
    /// Cycles per trial used to estimate per-cycle rates.
    pub cycles: usize,
}

/// Registry entry: the `threshold` experiment.
pub struct ThresholdExperiment;

impl Experiment for ThresholdExperiment {
    fn id(&self) -> &'static str {
        "threshold"
    }

    fn title(&self) -> &'static str {
        "§2.2 — measured pseudo-thresholds vs the Equation 1 bound"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["mc", "sweep", "eq1"]
    }

    fn run(&self, ctx: &mut ExperimentContext) -> Report {
        run_ctx(ctx).to_report()
    }
}

/// Runs the threshold sweep with the given Monte-Carlo budget.
pub fn run(cfg: &RunConfig) -> ThresholdResult {
    run_ctx(&mut ExperimentContext::new(*cfg))
}

/// [`run`] on an explicit context: the level-1 program comes from the
/// shared compile cache and the two 12-point sweeps run cross-point
/// parallel under the context's scheduler.
pub fn run_ctx(ctx: &mut ExperimentContext) -> ThresholdResult {
    let cycles = 4usize;
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let mc = ctx.concat(1, gate, cycles);

    let make_series = |name: &str, budget: GateBudget, perfect_init: bool, seed: u64| {
        // ρ is a lower bound on the true threshold: the measured crossing
        // sits several times higher, so sweep well past ρ.
        let rho = budget.threshold();
        let grid = log_grid(rho / 8.0, rho * 16.0, 12);
        let points_raw = ctx.sweep(&grid, |g, share| {
            let opts = share.options().seed(seed).salt(g.to_bits());
            if perfect_init {
                ctx.estimate_concat(&mc, &SplitNoise::perfect_init(g), &opts)
            } else {
                ctx.estimate_concat(&mc, &UniformNoise::new(g), &opts)
            }
        });
        let points: Vec<ThresholdPoint> = points_raw
            .iter()
            .map(|p| ThresholdPoint {
                g: p.g,
                logical: p.estimate.per_cycle(cycles),
                estimate: p.estimate,
                eq1_bound: budget.logical_error_bound(p.g).expect("valid rate"),
            })
            .collect();
        // Crossing of the *per-cycle* rate with g.
        let per_cycle_points: Vec<SweepPoint> = points
            .iter()
            .map(|p| SweepPoint {
                g: p.g,
                estimate: ErrorEstimate {
                    failures: p.estimate.failures,
                    trials: p.estimate.trials,
                    rate: p.logical.max(1e-12),
                    low: p.logical,
                    high: p.logical,
                },
            })
            .collect();
        let measured_crossing = find_crossing(&per_cycle_points, |g| g);
        ThresholdSeries {
            name: name.to_string(),
            budget_ops: budget.ops(),
            analytic_threshold: rho,
            points,
            measured_crossing,
        }
    };

    let seed = ctx.cfg().seed;
    let series = vec![
        make_series(
            "uniform noise (init counted, G = 11)",
            GateBudget::NONLOCAL_WITH_INIT,
            false,
            seed,
        ),
        make_series(
            "perfect init (G = 9)",
            GateBudget::NONLOCAL_NO_INIT,
            true,
            seed ^ 0xABCD,
        ),
    ];
    ThresholdResult { series, cycles }
}

impl ThresholdResult {
    /// Whether every measured crossing is at or above the analytic lower
    /// bound (allowing Monte-Carlo slack).
    pub fn crossings_above_analytic(&self) -> bool {
        self.series.iter().all(|s| match s.measured_crossing {
            Some(g) => g >= s.analytic_threshold * 0.8,
            None => false,
        })
    }

    /// The [`Report`] artifact: one sweep table and logical-rate series
    /// per noise accounting, plus the crossing-above-bound checks.
    pub fn to_report(&self) -> Report {
        let exp = &ThresholdExperiment;
        let mut r = Report::new(exp.id(), exp.title(), exp.tags());
        for s in &self.series {
            let mut t = Table::new(
                format!(
                    "§2.2 threshold sweep — {} (ρ = 1/{:.0})",
                    s.name,
                    1.0 / s.analytic_threshold
                ),
                &[
                    "g",
                    "g/ρ",
                    "logical (per cycle)",
                    "raw CI",
                    "Eq.1 bound",
                    "helps?",
                ],
            );
            for p in &s.points {
                t.row(&[
                    sci(p.g),
                    format!("{:.2}", p.g / s.analytic_threshold),
                    sci(p.logical),
                    rate_ci(p.estimate.rate, p.estimate.low, p.estimate.high),
                    sci(p.eq1_bound),
                    if p.logical < p.g { "yes" } else { "no" }.to_string(),
                ]);
            }
            r.table(t);
            r.series(Series::new(
                format!("per-cycle logical rate — {}", s.name),
                "g",
                "logical error rate",
                s.points.iter().map(|p| (p.g, p.logical)).collect(),
            ));
            match s.measured_crossing {
                Some(g) => r.note(format!(
                    "{}: measured pseudo-threshold ≈ {} = 1/{:.0} (analytic lower bound 1/{:.0})",
                    s.name,
                    sci(g),
                    1.0 / g,
                    1.0 / s.analytic_threshold
                )),
                None => r.note(format!(
                    "{}: no crossing bracketed in the sweep range",
                    s.name
                )),
            };
            r.check(Check::bool(
                format!(
                    "{}: measured crossing ≥ 0.8× the analytic lower bound (MC slack)",
                    s.name
                ),
                s.measured_crossing
                    .is_some_and(|g| g >= s.analytic_threshold * 0.8),
            ));
        }
        r
    }

    /// Prints the rendered report.
    pub fn print(&self) {
        self.to_report().print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_threshold_sweep_is_sane() {
        let r = run(&RunConfig {
            trials: 1500,
            seed: 7,
            threads: 4,
            ..RunConfig::quick()
        });
        assert_eq!(r.series.len(), 2);
        for s in &r.series {
            // Error rates must be monotone-ish: last point (well above ρ)
            // worse than first point (well below ρ).
            let first = s.points.first().unwrap();
            let last = s.points.last().unwrap();
            assert!(last.logical > first.logical);
            // Below threshold the scheme helps.
            assert!(
                first.logical < first.g * 1.2,
                "{}: at g/ρ = 1/8, logical {} should be ≲ g {}",
                s.name,
                first.logical,
                first.g
            );
        }
    }

    #[test]
    fn print_renders() {
        let r = run(&RunConfig {
            trials: 500,
            seed: 3,
            threads: 2,
            ..RunConfig::quick()
        });
        r.print();
    }
}
