//! Estimation statistics for Monte-Carlo experiments: binomial (Wilson)
//! intervals for plain estimates, and their weighted generalization for
//! the engine's fault-count-stratified rare-event estimator.

use rft_revsim::engine::{McOutcome, StratumOutcome};
use serde::{Deserialize, Serialize};

/// The `z` value of a two-sided 95% normal interval.
const Z95: f64 = 1.959964;

/// A binomial error-rate estimate with a Wilson confidence interval.
#[must_use = "an estimate should be inspected or reported"]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorEstimate {
    /// Observed failures.
    pub failures: u64,
    /// Trials run.
    pub trials: u64,
    /// Point estimate `failures / trials`.
    pub rate: f64,
    /// Lower bound of the 95% Wilson interval.
    pub low: f64,
    /// Upper bound of the 95% Wilson interval.
    pub high: f64,
}

impl ErrorEstimate {
    /// Builds an estimate from counts with a 95% Wilson interval.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `failures > trials`.
    pub fn from_counts(failures: u64, trials: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        assert!(failures <= trials, "more failures than trials");
        let (low, high) = wilson_interval(failures, trials, Z95);
        ErrorEstimate {
            failures,
            trials,
            rate: failures as f64 / trials as f64,
            low,
            high,
        }
    }

    /// Combines fault-count-stratified tallies into a weighted estimate
    /// with a Wilson-style 95% interval (see [`stratified_estimate`]).
    pub fn from_strata(strata: &[StratumOutcome]) -> Self {
        stratified_estimate(strata, Z95)
    }

    /// Converts a per-`cycles` failure rate into a per-cycle rate via
    /// `p₁ = 1 − (1−p)^(1/cycles)`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn per_cycle(&self, cycles: usize) -> f64 {
        assert!(cycles > 0, "need at least one cycle");
        if self.rate >= 1.0 {
            return 1.0;
        }
        1.0 - (1.0 - self.rate).powf(1.0 / cycles as f64)
    }

    /// Whether the interval excludes a given rate.
    #[must_use]
    pub fn excludes(&self, rate: f64) -> bool {
        rate < self.low || rate > self.high
    }
}

/// An [`Engine`](rft_revsim::engine::Engine) estimation outcome wraps
/// directly into a Wilson-interval estimate over the trials actually
/// executed (which is what adaptive early stopping leaves behind). A
/// stratified outcome routes through [`stratified_estimate`], so the
/// reported rate and interval carry the exact stratum weights.
impl From<McOutcome> for ErrorEstimate {
    fn from(outcome: McOutcome) -> Self {
        if outcome.strata.is_empty() {
            return ErrorEstimate::from_counts(outcome.failures, outcome.trials);
        }
        let mut est = stratified_estimate(&outcome.strata, Z95);
        // Preserve the pooled conditional counts for reporting.
        est.failures = outcome.failures;
        est.trials = outcome.trials;
        est
    }
}

/// Combines per-stratum tallies `(weight wₖ, failures fₖ, trials nₖ)`
/// into a weighted estimate of `p = Σ wₖ qₖ` with a 95% interval.
///
/// The point estimate is the unbiased `Σ wₖ · fₖ/nₖ`. The interval
/// generalizes Wilson: each stratum contributes its Wilson midpoint `cₖ`
/// and half-width `hₖ`, combined as centre `Σ wₖ cₖ` and half-width
/// `√(Σ (wₖ hₖ)²)` (strata are independent) — for a single stratum this
/// reduces to the ordinary Wilson interval scaled by its weight. Strata
/// with weight but **no trials** (budget exhausted before coverage)
/// contribute their full ignorance interval `[0, wₖ]`, keeping the
/// result conservative. The interval is clamped to `[0, Σ wₖ]`: the true
/// rate cannot exceed the executed (non-elided) mass.
pub fn stratified_estimate(strata: &[StratumOutcome], z: f64) -> ErrorEstimate {
    let mut rate = 0.0;
    let mut centre = 0.0;
    let mut var = 0.0;
    let mut unexecuted = 0.0;
    let mut failures = 0u64;
    let mut trials = 0u64;
    let total_weight: f64 = strata.iter().map(|s| s.weight).sum();
    for s in strata {
        if s.weight <= 0.0 {
            continue;
        }
        if s.trials == 0 {
            // Unexecuted stratum: bounded below by 0, above by its whole
            // weight — it widens only the upper side.
            unexecuted += s.weight;
            continue;
        }
        failures += s.failures;
        trials += s.trials;
        rate += s.weight * s.failures as f64 / s.trials as f64;
        let (lo, hi) = wilson_interval(s.failures, s.trials, z);
        let c = (lo + hi) / 2.0;
        let h = (hi - lo) / 2.0;
        centre += s.weight * c;
        var += (s.weight * h) * (s.weight * h);
    }
    let half = var.sqrt();
    // The Wilson midpoints are deliberately biased away from the extremes,
    // so for very sparse strata the smoothed band can drift off the
    // unbiased point estimate — widen minimally to contain it.
    let low = (centre - half).max(0.0).min(rate);
    let high = (centre + half + unexecuted)
        .min(total_weight)
        .min(1.0)
        .max(rate);
    ErrorEstimate {
        failures,
        trials,
        rate,
        low,
        high,
    }
}

/// The Wilson score interval for a binomial proportion.
///
/// Well-behaved at 0 and 1 and for small counts, unlike the normal
/// approximation — important because deep-below-threshold error rates
/// produce very few failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    assert!(n > 0, "need at least one observation");
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let half = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (
        ((centre - half) / denom).max(0.0),
        ((centre + half) / denom).min(1.0),
    )
}

/// Least-squares slope of `y` against `x` — used to fit poly-log overhead
/// exponents (§2.3) from measured series.
///
/// # Panics
///
/// Panics if fewer than two points or mismatched lengths.
pub fn linear_slope(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "mismatched series");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_contains_point_estimate() {
        let (lo, hi) = wilson_interval(10, 100, 1.96);
        assert!(lo < 0.1 && 0.1 < hi);
        assert!(lo > 0.04 && hi < 0.19);
    }

    #[test]
    fn wilson_handles_zero_and_all() {
        let (lo, hi) = wilson_interval(0, 50, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.15);
        let (lo2, hi2) = wilson_interval(50, 50, 1.96);
        assert!(lo2 > 0.85);
        assert_eq!(hi2, 1.0);
    }

    #[test]
    fn estimate_from_counts() {
        let e = ErrorEstimate::from_counts(5, 1000);
        assert!((e.rate - 0.005).abs() < 1e-12);
        assert!(e.low < e.rate && e.rate < e.high);
        assert!(e.excludes(0.5));
        assert!(!e.excludes(0.005));
    }

    #[test]
    fn per_cycle_inverts_compounding() {
        // p over 10 cycles with per-cycle rate q: p = 1-(1-q)^10.
        let q: f64 = 0.01;
        let p = 1.0 - (1.0 - q).powi(10);
        let e = ErrorEstimate {
            failures: 0,
            trials: 1,
            rate: p,
            low: 0.0,
            high: 1.0,
        };
        assert!((e.per_cycle(10) - q).abs() < 1e-12);
    }

    #[test]
    fn per_cycle_saturates_at_one() {
        let e = ErrorEstimate {
            failures: 1,
            trials: 1,
            rate: 1.0,
            low: 0.0,
            high: 1.0,
        };
        assert_eq!(e.per_cycle(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn from_counts_rejects_zero_trials() {
        let _ = ErrorEstimate::from_counts(0, 0);
    }

    fn stratum(weight: f64, failures: u64, trials: u64) -> StratumOutcome {
        StratumOutcome {
            k_lo: 1,
            k_hi: Some(1),
            weight,
            failures,
            trials,
        }
    }

    #[test]
    fn single_stratum_reduces_to_scaled_wilson() {
        let w = 0.05;
        let est = stratified_estimate(&[stratum(w, 30, 1000)], 1.959964);
        let (lo, hi) = wilson_interval(30, 1000, 1.959964);
        assert!((est.rate - w * 0.03).abs() < 1e-12);
        assert!(
            (est.low - w * lo).abs() < 1e-12,
            "{} vs {}",
            est.low,
            w * lo
        );
        assert!((est.high - w * hi).abs() < 1e-12);
    }

    #[test]
    fn stratified_combines_independent_strata() {
        let strata = [stratum(0.1, 50, 1000), stratum(0.01, 10, 100)];
        let est = stratified_estimate(&strata, 1.959964);
        let expect = 0.1 * 0.05 + 0.01 * 0.1;
        assert!((est.rate - expect).abs() < 1e-12);
        assert!(est.low < est.rate && est.rate < est.high);
        // Tighter than the naive sum of the two scaled intervals.
        let (l1, h1) = wilson_interval(50, 1000, 1.959964);
        let (l2, h2) = wilson_interval(10, 100, 1.959964);
        let naive = (0.1 * (h1 - l1) + 0.01 * (h2 - l2)) / 2.0;
        assert!((est.high - est.low) / 2.0 <= naive + 1e-12);
        assert_eq!(est.failures, 60);
        assert_eq!(est.trials, 1100);
    }

    #[test]
    fn unexecuted_stratum_contributes_full_ignorance() {
        let strata = [stratum(0.2, 0, 500), stratum(0.01, 0, 0)];
        let est = stratified_estimate(&strata, 1.959964);
        // The unexecuted stratum's whole weight stays inside the interval.
        assert!(est.high >= 0.01, "high {} must cover [0, 0.01]", est.high);
        assert_eq!(est.rate, 0.0);
        assert_eq!(est.low, 0.0);
    }

    #[test]
    fn stratified_interval_clamps_to_executed_mass() {
        // All conditional trials fail: the upper bound cannot exceed the
        // stratum mass.
        let est = stratified_estimate(&[stratum(0.03, 100, 100)], 1.959964);
        assert!(est.high <= 0.03 + 1e-15);
        assert!(est.rate <= 0.03 + 1e-15);
    }

    #[test]
    fn zero_weight_everything_is_exactly_zero() {
        let est = stratified_estimate(&[stratum(0.0, 0, 0)], 1.959964);
        assert_eq!((est.rate, est.low, est.high), (0.0, 0.0, 0.0));
    }

    #[test]
    fn slope_fits_a_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((linear_slope(&x, &y) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slope_fits_polylog_exponent() {
        // y = x^4.75 in log-log space.
        let x: Vec<f64> = (1..8).map(|i| (i as f64).ln()).collect();
        let y: Vec<f64> = (1..8).map(|i| 4.75 * (i as f64).ln()).collect();
        assert!((linear_slope(&x, &y) - 4.75).abs() < 1e-9);
    }
}
