//! Estimation statistics for Monte-Carlo experiments.

use rft_revsim::engine::McOutcome;
use serde::{Deserialize, Serialize};

/// A binomial error-rate estimate with a Wilson confidence interval.
#[must_use = "an estimate should be inspected or reported"]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorEstimate {
    /// Observed failures.
    pub failures: u64,
    /// Trials run.
    pub trials: u64,
    /// Point estimate `failures / trials`.
    pub rate: f64,
    /// Lower bound of the 95% Wilson interval.
    pub low: f64,
    /// Upper bound of the 95% Wilson interval.
    pub high: f64,
}

impl ErrorEstimate {
    /// Builds an estimate from counts with a 95% Wilson interval.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `failures > trials`.
    pub fn from_counts(failures: u64, trials: u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        assert!(failures <= trials, "more failures than trials");
        let (low, high) = wilson_interval(failures, trials, 1.959964);
        ErrorEstimate {
            failures,
            trials,
            rate: failures as f64 / trials as f64,
            low,
            high,
        }
    }

    /// Converts a per-`cycles` failure rate into a per-cycle rate via
    /// `p₁ = 1 − (1−p)^(1/cycles)`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn per_cycle(&self, cycles: usize) -> f64 {
        assert!(cycles > 0, "need at least one cycle");
        if self.rate >= 1.0 {
            return 1.0;
        }
        1.0 - (1.0 - self.rate).powf(1.0 / cycles as f64)
    }

    /// Whether the interval excludes a given rate.
    #[must_use]
    pub fn excludes(&self, rate: f64) -> bool {
        rate < self.low || rate > self.high
    }
}

/// An [`Engine`](rft_revsim::engine::Engine) estimation outcome wraps
/// directly into a Wilson-interval estimate over the trials actually
/// executed (which is what adaptive early stopping leaves behind).
impl From<McOutcome> for ErrorEstimate {
    fn from(outcome: McOutcome) -> Self {
        ErrorEstimate::from_counts(outcome.failures, outcome.trials)
    }
}

/// The Wilson score interval for a binomial proportion.
///
/// Well-behaved at 0 and 1 and for small counts, unlike the normal
/// approximation — important because deep-below-threshold error rates
/// produce very few failures.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn wilson_interval(successes: u64, n: u64, z: f64) -> (f64, f64) {
    assert!(n > 0, "need at least one observation");
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let half = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (
        ((centre - half) / denom).max(0.0),
        ((centre + half) / denom).min(1.0),
    )
}

/// Least-squares slope of `y` against `x` — used to fit poly-log overhead
/// exponents (§2.3) from measured series.
///
/// # Panics
///
/// Panics if fewer than two points or mismatched lengths.
pub fn linear_slope(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "mismatched series");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_contains_point_estimate() {
        let (lo, hi) = wilson_interval(10, 100, 1.96);
        assert!(lo < 0.1 && 0.1 < hi);
        assert!(lo > 0.04 && hi < 0.19);
    }

    #[test]
    fn wilson_handles_zero_and_all() {
        let (lo, hi) = wilson_interval(0, 50, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.15);
        let (lo2, hi2) = wilson_interval(50, 50, 1.96);
        assert!(lo2 > 0.85);
        assert_eq!(hi2, 1.0);
    }

    #[test]
    fn estimate_from_counts() {
        let e = ErrorEstimate::from_counts(5, 1000);
        assert!((e.rate - 0.005).abs() < 1e-12);
        assert!(e.low < e.rate && e.rate < e.high);
        assert!(e.excludes(0.5));
        assert!(!e.excludes(0.005));
    }

    #[test]
    fn per_cycle_inverts_compounding() {
        // p over 10 cycles with per-cycle rate q: p = 1-(1-q)^10.
        let q: f64 = 0.01;
        let p = 1.0 - (1.0 - q).powi(10);
        let e = ErrorEstimate {
            failures: 0,
            trials: 1,
            rate: p,
            low: 0.0,
            high: 1.0,
        };
        assert!((e.per_cycle(10) - q).abs() < 1e-12);
    }

    #[test]
    fn per_cycle_saturates_at_one() {
        let e = ErrorEstimate {
            failures: 1,
            trials: 1,
            rate: 1.0,
            low: 0.0,
            high: 1.0,
        };
        assert_eq!(e.per_cycle(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn from_counts_rejects_zero_trials() {
        let _ = ErrorEstimate::from_counts(0, 0);
    }

    #[test]
    fn slope_fits_a_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((linear_slope(&x, &y) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slope_fits_polylog_exponent() {
        // y = x^4.75 in log-log space.
        let x: Vec<f64> = (1..8).map(|i| (i as f64).ln()).collect();
        let y: Vec<f64> = (1..8).map(|i| 4.75 * (i as f64).ln()).collect();
        assert!((linear_slope(&x, &y) - 4.75).abs() < 1e-9);
    }
}
