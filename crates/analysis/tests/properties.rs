//! Property-based tests for the statistics and sweep machinery.

use proptest::prelude::*;
use rft_analysis::prelude::*;

proptest! {
    /// The Wilson interval always contains the point estimate and stays in
    /// [0, 1].
    #[test]
    fn wilson_contains_estimate(failures in 0u64..1000, extra in 0u64..100_000) {
        let n = failures + extra.max(1);
        let (lo, hi) = wilson_interval(failures, n, 1.96);
        let p = failures as f64 / n as f64;
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
    }

    /// Intervals shrink with more data at the same rate.
    #[test]
    fn wilson_shrinks_with_n(failures in 1u64..50, scale in 2u64..50) {
        let n1 = failures * 10;
        let n2 = n1 * scale;
        let (lo1, hi1) = wilson_interval(failures, n1, 1.96);
        let (lo2, hi2) = wilson_interval(failures * scale, n2, 1.96);
        prop_assert!(hi2 - lo2 <= hi1 - lo1 + 1e-12);
    }

    /// Per-cycle conversion inverts compounding for any cycle count, in
    /// the regime where the compounded rate is well-conditioned (p not so
    /// close to 1 that `1 − p` loses all its precision).
    #[test]
    fn per_cycle_inverts_compounding(q in 1e-6f64..0.5, cycles in 1usize..50) {
        let p = 1.0 - (1.0 - q).powi(cycles as i32);
        prop_assume!(p < 0.999);
        let est = ErrorEstimate { failures: 1, trials: 2, rate: p, low: 0.0, high: 1.0 };
        let back = est.per_cycle(cycles);
        prop_assert!((back - q).abs() / q < 1e-6, "q {q} cycles {cycles} -> {back}");
    }

    /// Log grids are sorted, within range, and hit both endpoints.
    #[test]
    fn log_grid_well_formed(lo_exp in -6f64..-1.0, span in 0.5f64..4.0, n in 2usize..30) {
        let lo = 10f64.powf(lo_exp);
        let hi = 10f64.powf(lo_exp + span);
        let grid = log_grid(lo, hi, n);
        prop_assert_eq!(grid.len(), n);
        prop_assert!((grid[0] - lo).abs() / lo < 1e-9);
        prop_assert!((grid[n - 1] - hi).abs() / hi < 1e-9);
        for pair in grid.windows(2) {
            prop_assert!(pair[1] > pair[0]);
        }
    }

    /// Crossing detection finds the analytic crossing of p(g) = c·g² with
    /// the diagonal within grid resolution, for any quadratic coefficient.
    #[test]
    fn crossing_of_quadratics(c in 10f64..1000.0) {
        let g_star = 1.0 / c;
        let grid = log_grid(g_star / 30.0, (g_star * 30.0).min(0.9), 40);
        let points: Vec<SweepPoint> = grid
            .iter()
            .map(|&g| {
                let rate = (c * g * g).min(0.99);
                let trials = 1_000_000u64;
                let failures = ((rate * trials as f64) as u64).max(1);
                SweepPoint { g, estimate: ErrorEstimate::from_counts(failures, trials) }
            })
            .collect();
        let found = find_crossing(&points, |g| g).expect("crossing must be bracketed");
        prop_assert!((found - g_star).abs() / g_star < 0.3, "found {found} vs {g_star}");
    }

    /// The slope fit recovers arbitrary linear coefficients.
    #[test]
    fn slope_recovers_lines(a in -10f64..10.0, b in -5f64..5.0) {
        let x: Vec<f64> = (0..20).map(|i| i as f64 / 3.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| a * v + b).collect();
        prop_assert!((linear_slope(&x, &y) - a).abs() < 1e-9);
    }
}
