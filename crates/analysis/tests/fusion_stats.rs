//! Compile-pipeline guarantees on the real concatenated streams — the CI
//! gate against fusion silently regressing to the raw op stream, plus
//! width-invariance of the production estimators.

use rft_analysis::prelude::*;
use rft_revsim::engine::WordWidth;
use rft_revsim::prelude::*;

fn toffoli() -> Gate {
    Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    }
}

/// The CI fusion assertion: the 585-op level-2 stream must compile to
/// multi-op fused segments (if this fails, the fusion pass has been
/// accidentally disabled and the fused_vs_raw bench numbers are
/// meaningless).
#[test]
fn level2_stream_compiles_to_fused_segments() {
    let mc = ConcatMc::new(2, toffoli(), 1);
    let engine = mc.engine(&UniformNoise::new(1e-3));
    let stats = engine.compile_stats();
    assert_eq!(stats.ops, 585);
    assert!(
        stats.fused_segments > 0 && stats.max_segment_len > 1,
        "fusion disabled on the level-2 stream: {stats:?}"
    );
    assert!(
        stats.micro_ops < stats.ops,
        "fusion did not shrink the op stream: {stats:?}"
    );
    // Deep below threshold the recovery blocks (INIT pairs + MAJ⁻¹
    // fan-out on fresh ancillas) specialize.
    assert!(
        stats.specialized_ops > 100,
        "known-constant MAJ⁻¹ specialization missing: {stats:?}"
    );
    // Histogram is consistent with the segment counts.
    let hist_total: usize = stats.segment_len_hist.iter().map(|&(_, n)| n).sum();
    assert_eq!(hist_total, stats.fused_segments);
    let hist_ops: usize = stats.segment_len_hist.iter().map(|&(l, n)| l * n).sum();
    assert_eq!(hist_ops, stats.fused_ops);
}

/// The 27-op Figure-2 stream fuses its INIT runs even at the classic
/// benchmark noise (where MAJ⁻¹ specialization is gated off).
#[test]
fn fig2_stream_fuses_at_bench_noise() {
    let mc = ConcatMc::new(1, toffoli(), 1);
    let engine = mc.engine(&UniformNoise::new(1.0 / 165.0));
    let stats = engine.compile_stats();
    assert_eq!(stats.ops, 27);
    assert!(stats.max_segment_len > 1, "no fusion on fig2: {stats:?}");
}

/// Level-1 and level-2 estimates are bit-identical at every wide-word
/// width, across estimators — through the full ConcatMc production path.
#[test]
fn concat_estimates_are_width_invariant() {
    let mc = ConcatMc::new(1, toffoli(), 1);
    let noise = UniformNoise::new(0.01);
    for estimator in [Estimator::Plain, Estimator::Auto] {
        let base = McOptions::new(4_096).seed(7).estimator(estimator);
        let w1 = mc.estimate_outcome(&noise, &base.width(WordWidth::W1));
        let w2 = mc.estimate_outcome(&noise, &base.width(WordWidth::W2));
        let w4 = mc.estimate_outcome(&noise, &base.width(WordWidth::W4));
        let auto = mc.estimate_outcome(&noise, &base.width(WordWidth::Auto));
        assert_eq!(w1, w2, "{estimator}: W2 differs");
        assert_eq!(w1, w4, "{estimator}: W4 differs");
        assert_eq!(w1, auto, "{estimator}: Auto differs");
    }
    // Stratified rare-event path, wide vs narrow and vs scalar.
    let deep = UniformNoise::new(1e-3);
    let base = McOptions::new(8_192).seed(11).stratified(2, 4);
    let w1 = mc.estimate_outcome(&deep, &base.width(WordWidth::W1));
    let w4 = mc.estimate_outcome(&deep, &base.width(WordWidth::W4));
    let scalar = mc.estimate_outcome(&deep, &base.backend(BackendKind::Scalar));
    assert_eq!(w1, w4, "stratified: W4 differs");
    assert_eq!(w1.failures, scalar.failures, "stratified: scalar differs");
    assert_eq!(w1.strata, scalar.strata);
}

/// Width is thread-count independent too (chunk grouping never crosses
/// word boundaries' RNG streams).
#[test]
fn width_and_threads_commute() {
    let mc = ConcatMc::new(1, toffoli(), 1);
    let noise = UniformNoise::new(0.02);
    let base = McOptions::new(4_096).seed(3).width(WordWidth::W4);
    let t1 = mc.estimate_outcome(&noise, &base.threads(1));
    let t3 = mc.estimate_outcome(&noise, &base.threads(3));
    assert_eq!(t1, t3);
}
