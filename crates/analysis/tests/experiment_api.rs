//! Integration tests of the experiment API: registry completeness and
//! uniqueness, `Report` JSON round-trips and schema versioning, and the
//! determinism contract — a parallel-scheduled run is bit-identical to a
//! serial run at a fixed seed.

use rft_analysis::experiment::{find, registry, run_experiments, CompileCache, ExperimentContext};
use rft_analysis::experiments::{suppression, threshold, RunConfig};
use rft_analysis::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// The experiment ids of the `DESIGN.md` table (one per module under
/// `experiments/`), in the registry's canonical run order.
const EXPECTED_IDS: [&str; 16] = [
    "table1",
    "fig2",
    "blowup",
    "levelreq",
    "table2",
    "nand",
    "advantage",
    "detectcov",
    "detectoverhead",
    "ablation",
    "local",
    "entropy",
    "threshold",
    "suppression",
    "detectwidth",
    "detecthybrid",
];

fn tiny() -> RunConfig {
    RunConfig {
        trials: 800,
        seed: 7,
        threads: 1,
        ..RunConfig::quick()
    }
}

#[test]
fn registry_matches_the_design_table_exactly_once() {
    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    assert_eq!(ids, EXPECTED_IDS, "registry must list every module once");
    let unique: HashSet<&str> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "ids must be unique");
    for exp in registry() {
        assert!(!exp.title().is_empty(), "{} needs a title", exp.id());
        assert!(!exp.tags().is_empty(), "{} needs tags", exp.id());
        let found = find(exp.id()).expect("find must resolve every id");
        assert_eq!(found.id(), exp.id());
    }
    assert!(find("no-such-experiment").is_none());
}

#[test]
fn every_experiment_report_round_trips_through_json() {
    let cfg = tiny();
    for run in run_experiments(registry(), &cfg) {
        let report = &run.report;
        assert_eq!(report.id, run.id, "report id must match the registry id");
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        let json = report.to_json();
        let back = Report::from_json(&json).expect("report JSON must parse back");
        assert_eq!(
            &back, report,
            "{}: JSON round trip must be lossless",
            run.id
        );
        assert!(
            !report.checks.is_empty(),
            "{}: every experiment must self-check",
            run.id
        );
    }
}

#[test]
fn schema_version_is_pinned_in_the_artifact() {
    let mut ctx = ExperimentContext::new(tiny());
    let report = find("table1").unwrap().run(&mut ctx);
    assert_eq!(report.schema_version, 1);
    assert!(report.to_json().contains("\"schema_version\": 1"));
}

#[test]
fn parallel_run_is_bit_identical_to_serial() {
    // The two sweep-heaviest experiments, at 1 vs 8 threads: same seeds,
    // same salts, same word schedule — the scheduler must only reorder
    // execution, never results.
    let serial_cfg = RunConfig {
        threads: 1,
        ..tiny()
    };
    let parallel_cfg = RunConfig {
        threads: 8,
        ..tiny()
    };
    for id in ["threshold", "suppression", "local"] {
        let exp = find(id).unwrap();
        let a = exp.run(&mut ExperimentContext::new(serial_cfg));
        let b = exp.run(&mut ExperimentContext::new(parallel_cfg));
        assert_eq!(a, b, "{id}: parallel report must equal serial report");
        assert_eq!(a.to_json(), b.to_json(), "{id}: and byte-identical JSON");
    }
}

#[test]
fn runner_matches_standalone_contexts() {
    // run_experiments shares one cache across experiments; sharing must
    // not change any report.
    let cfg = tiny();
    let runs = run_experiments(
        &[find("threshold").unwrap(), find("suppression").unwrap()],
        &cfg,
    );
    let solo_t = threshold::run(&cfg).to_report();
    let solo_s = suppression::run(&cfg).to_report();
    assert_eq!(runs[0].report, solo_t);
    assert_eq!(runs[1].report, solo_s);
}

#[test]
fn shared_cache_reuses_programs_across_experiments() {
    let cfg = tiny();
    let cache = Arc::new(CompileCache::new());
    // suppression compiles levels 0..=2 of the 3-cycle Toffoli program …
    let mut ctx = ExperimentContext::with_cache(cfg, Arc::clone(&cache));
    let _ = suppression::run_ctx(&mut ctx);
    let programs_after_first = cache.programs_cached();
    assert_eq!(
        programs_after_first, 3,
        "one compiled program per level, shared by all five rates"
    );
    // … and a second suppression run compiles nothing new: every program
    // and every (circuit, rate) engine is already cached.
    let misses_before = cache.misses();
    let mut ctx2 = ExperimentContext::with_cache(cfg, Arc::clone(&cache));
    let _ = suppression::run_ctx(&mut ctx2);
    assert_eq!(cache.programs_cached(), programs_after_first);
    assert_eq!(
        cache.misses(),
        misses_before,
        "a repeated run must be compile-free"
    );
    assert!(cache.hits() > 0, "second run must hit the caches");
}

#[test]
fn reports_render_and_pass_at_tiny_budget() {
    // Exact experiments must pass their checks even at a tiny budget;
    // render must include the self-check table.
    let cfg = tiny();
    for id in [
        "table1",
        "fig2",
        "blowup",
        "levelreq",
        "table2",
        "nand",
        "advantage",
        "detectcov",
    ] {
        let report = find(id).unwrap().run(&mut ExperimentContext::new(cfg));
        assert!(report.passed(), "{id}: {:?}", report.failed_checks());
        assert!(report.render().contains("self-checks"));
    }
}

#[test]
fn manifest_reflects_run_outcomes() {
    let cfg = tiny();
    let runs = run_experiments(&[find("table1").unwrap()], &cfg);
    let mut manifest = RunManifest::new(cfg, None, std::time::Duration::from_millis(1));
    manifest.push(&runs[0], "table1.json");
    let back = RunManifest::from_json(&manifest.to_json()).expect("manifest parses");
    assert_eq!(back.experiments.len(), 1);
    assert_eq!(back.experiments[0].id, "table1");
    assert!(back.experiments[0].passed);
    assert_eq!(back.schema_version, SCHEMA_VERSION);
}
