//! Statistical guarantees of the engine-based Monte-Carlo estimators.
//!
//! Scalar and batch backends share one fault schedule, so their agreement
//! is exact per seed (pinned by the revsim property tests); across
//! *different* seeds the estimators must still be statistically
//! consistent, reproduce the paper's qualitative behaviour (noiseless
//! perfection, below-threshold suppression), and — for the adaptive
//! early-stopping path — deliver estimates whose Wilson intervals both
//! meet the requested precision and cover the truth.

use rft_analysis::prelude::*;
use rft_core::ftcheck::transversal_cycle;
use rft_revsim::prelude::*;

fn toffoli() -> Gate {
    Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    }
}

fn scalar_opts(trials: u64, seed: u64) -> McOptions {
    McOptions::new(trials)
        .seed(seed)
        .threads(4)
        .backend(BackendKind::Scalar)
}

fn batch_opts(trials: u64, seed: u64) -> McOptions {
    McOptions::new(trials)
        .seed(seed)
        .threads(4)
        .backend(BackendKind::Batch)
}

#[test]
fn estimator_is_deterministic_per_seed() {
    let mc = ConcatMc::new(1, toffoli(), 1);
    let noise = UniformNoise::new(0.02);
    let a = mc.estimate(&noise, &batch_opts(4_000, 9));
    let b = mc.estimate(&noise, &batch_opts(4_000, 9));
    assert_eq!(a.failures, b.failures);
    // ...and thread-count independent (per-word seeding).
    let c = mc.estimate(&noise, &batch_opts(4_000, 9).threads(1));
    assert_eq!(a.failures, c.failures);
}

#[test]
fn scalar_and_batch_agree_on_concat_mc_within_wilson() {
    // Level-1 Toffoli cycle at a paper-scale rate: generous 95% interval
    // overlap between the two backends on *disjoint* seeds.
    let mc = ConcatMc::new(1, toffoli(), 1);
    for g in [1.0 / 60.0, 1.0 / 165.0] {
        let noise = UniformNoise::new(g);
        let scalar = mc.estimate(&noise, &scalar_opts(12_000, 21));
        let batch = mc.estimate(&noise, &batch_opts(12_000, 22));
        assert!(
            batch.low <= scalar.high && scalar.low <= batch.high,
            "g={g}: batch {batch:?} vs scalar {scalar:?}"
        );
    }
}

#[test]
fn scalar_and_batch_agree_on_cycle_spec_within_wilson() {
    let spec = transversal_cycle(&toffoli());
    let g = 1.0 / 100.0;
    let noise = UniformNoise::new(g);
    let scalar = estimate_cycle_error(&spec, &noise, &scalar_opts(12_000, 31));
    let batch = estimate_cycle_error(&spec, &noise, &batch_opts(12_000, 32));
    assert!(
        batch.low <= scalar.high && scalar.low <= batch.high,
        "batch {batch:?} vs scalar {scalar:?}"
    );
}

#[test]
fn batch_below_threshold_beats_unprotected() {
    // The headline below-threshold claim must survive the engine rewrite:
    // at g = ρ/4 the protected cycle beats the 27 unprotected gates.
    let g = 1.0 / 432.0;
    let mc = ConcatMc::new(1, toffoli(), 1);
    let est = mc.estimate(&UniformNoise::new(g), &batch_opts(40_000, 11));
    let baseline = unprotected_error(g, 27);
    assert!(
        est.rate < baseline,
        "protected {} not below unprotected {}",
        est.rate,
        baseline
    );
}

#[test]
fn batch_split_noise_matches_perfect_init_semantics() {
    // With perfect inits and g on gates only, the estimate must not exceed
    // the all-ops estimate (statistically: compare interval bounds).
    let mc = ConcatMc::new(1, toffoli(), 1);
    let g = 1.0 / 40.0;
    let all = mc.estimate(&UniformNoise::new(g), &batch_opts(20_000, 5));
    let split = mc.estimate(&SplitNoise::perfect_init(g), &batch_opts(20_000, 6));
    assert!(
        split.low <= all.high,
        "perfect-init {split:?} should not exceed all-ops {all:?}"
    );
}

#[test]
fn adaptive_early_stopping_meets_its_wilson_bound() {
    // Wilson-bound check of the adaptive path: ask for a target relative
    // standard error, and verify (a) the run stops early, (b) the achieved
    // Wilson interval is consistent with the requested precision, and
    // (c) the early-stopped interval covers a high-budget reference rate.
    let mc = ConcatMc::new(1, toffoli(), 1);
    let noise = UniformNoise::new(1.0 / 60.0);
    let target = 0.10;
    let outcome = mc.estimate_outcome(
        &noise,
        &McOptions::new(2_000_000)
            .seed(41)
            .threads(4)
            .target_rel_error(target),
    );
    assert!(outcome.early_stopped, "budget should not be exhausted");
    assert!(
        outcome.trials < outcome.requested / 4,
        "adaptive spent {} of {} trials",
        outcome.trials,
        outcome.requested
    );

    let est = ErrorEstimate::from(outcome);
    // (b) The Wilson half-width at stop time should be in the vicinity of
    // z·target·rate — allow 2× slack for the discreteness of round
    // boundaries and the normal-vs-Wilson difference.
    let half_width = (est.high - est.low) / 2.0;
    assert!(
        half_width <= 2.0 * 1.96 * target * est.rate,
        "half-width {half_width} too wide for target {target} at rate {}",
        est.rate
    );

    // (c) Coverage: a large fixed-budget reference run on a different
    // seed must land inside (or overlap) the early-stopped interval.
    let reference = mc.estimate(&noise, &batch_opts(200_000, 4242));
    assert!(
        est.low <= reference.high && reference.low <= est.high,
        "adaptive {est:?} vs reference {reference:?}"
    );
}

#[test]
fn stratified_agrees_with_plain_on_concat_mc() {
    // Moderate paper-scale rate where both estimators resolve: forced
    // plain vs forced stratified on disjoint seeds must overlap at 95%.
    let mc = ConcatMc::new(1, toffoli(), 1);
    let noise = UniformNoise::new(1.0 / 165.0);
    let plain = mc.estimate(&noise, &batch_opts(60_000, 51).estimator(Estimator::Plain));
    let strat = mc.estimate(
        &noise,
        &batch_opts(60_000, 52).estimator(Estimator::DEFAULT_STRATIFIED),
    );
    assert!(
        strat.low <= plain.high && plain.low <= strat.high,
        "stratified {strat:?} vs plain {plain:?}"
    );
    // The stratified interval is the tighter of the two at equal budget.
    assert!(
        strat.high - strat.low < plain.high - plain.low,
        "stratified {strat:?} should beat plain {plain:?} in width"
    );
}

#[test]
fn stratified_min_faults_two_is_sound_for_the_ft_cycle() {
    // The level-1 cycle provably corrects any single fault (ftcheck's
    // exhaustive sweep), so eliding the k ≤ 1 strata must not bias the
    // estimate: compare min_faults = 2 against plain at a rate where
    // plain resolves well.
    let mc = ConcatMc::new(1, toffoli(), 1);
    let noise = UniformNoise::new(1.0 / 60.0);
    let plain = mc.estimate(&noise, &batch_opts(60_000, 61).estimator(Estimator::Plain));
    let strat = mc.estimate(&noise, &batch_opts(60_000, 62).stratified(2, 4));
    assert!(
        strat.low <= plain.high && plain.low <= strat.high,
        "min_faults=2 {strat:?} vs plain {plain:?}"
    );
}

#[test]
fn auto_routes_deep_points_to_the_stratified_estimator() {
    // g = 10⁻³ on the level-1 cycle: plain MC at this budget would
    // usually see zero failures; the auto-routed stratified estimator
    // resolves a positive rate with a finite interval.
    let mc = ConcatMc::new(1, toffoli(), 1);
    let noise = UniformNoise::new(1e-3);
    let outcome = mc.estimate_outcome(&noise, &batch_opts(30_000, 71));
    assert_eq!(outcome.estimator, "stratified");
    let est = ErrorEstimate::from(outcome.clone());
    assert!(est.rate > 0.0, "deep rate resolved: {est:?}");
    assert!(est.rate < 1e-3, "level-1 must suppress below g: {est:?}");
    // The Equation-1 bound 3·C(11,2)·g² per encoded bit is a sanity
    // ceiling for the whole-cycle rate at 3 encoded bits.
    assert!(
        est.rate < 3.0 * 3.0 * 55.0 * 1e-6,
        "rate {} too high",
        est.rate
    );
    // Determinism across thread counts survives the stratified path.
    let again = mc.estimate_outcome(&noise, &batch_opts(30_000, 71).threads(1));
    assert_eq!(outcome.failures, again.failures);
    assert_eq!(outcome.strata, again.strata);
}

#[test]
fn adaptive_stopping_is_noop_when_failures_are_scarce() {
    // Deep below threshold almost nothing fails: the adaptive run must
    // quietly fall back to the full budget rather than stop on noise.
    let mc = ConcatMc::new(1, toffoli(), 1);
    let noise = UniformNoise::new(1.0 / 2000.0);
    let outcome = mc.estimate_outcome(
        &noise,
        &McOptions::new(3_000)
            .seed(8)
            .threads(2)
            .target_rel_error(0.05),
    );
    assert!(!outcome.early_stopped);
    assert_eq!(outcome.trials, 3_000);
}
