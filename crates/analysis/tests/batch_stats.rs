//! Statistical equivalence of the scalar and batch Monte-Carlo paths.
//!
//! The two estimators use different RNG streams, so exact equality is not
//! expected — instead their Wilson intervals must be consistent, and the
//! batch path must reproduce the paper's qualitative behaviour (noiseless
//! perfection, below-threshold suppression).

use rft_analysis::prelude::*;
use rft_core::ftcheck::transversal_cycle;
use rft_revsim::prelude::*;

fn toffoli() -> Gate {
    Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    }
}

#[test]
fn batch_estimator_is_deterministic_per_seed() {
    let mc = ConcatMc::new(1, toffoli(), 1);
    let noise = UniformNoise::new(0.02);
    let a = mc.estimate_batch(&noise, 4_000, 9, 4);
    let b = mc.estimate_batch(&noise, 4_000, 9, 4);
    assert_eq!(a.failures, b.failures);
    let c = mc.estimate_batch(&noise, 4_000, 10, 4);
    assert_ne!((a.failures, a.trials), (c.failures, c.trials + 1), "sanity");
}

#[test]
fn scalar_and_batch_agree_on_concat_mc_within_wilson() {
    // Level-1 Toffoli cycle at a paper-scale rate: generous 95% interval
    // overlap between the two estimators.
    let mc = ConcatMc::new(1, toffoli(), 1);
    for g in [1.0 / 60.0, 1.0 / 165.0] {
        let noise = UniformNoise::new(g);
        let scalar = mc.estimate_scalar(&noise, 12_000, 21, 4);
        let batch = mc.estimate_batch(&noise, 12_000, 22, 4);
        assert!(
            batch.low <= scalar.high && scalar.low <= batch.high,
            "g={g}: batch {batch:?} vs scalar {scalar:?}"
        );
    }
}

#[test]
fn scalar_and_batch_agree_on_cycle_spec_within_wilson() {
    let spec = transversal_cycle(&toffoli());
    let g = 1.0 / 100.0;
    let noise = UniformNoise::new(g);
    let scalar = estimate_cycle_error_scalar(&spec, &noise, 12_000, 31, 4);
    let batch = estimate_cycle_error_batch(&spec, &noise, 12_000, 32, 4);
    assert!(
        batch.low <= scalar.high && scalar.low <= batch.high,
        "batch {batch:?} vs scalar {scalar:?}"
    );
}

#[test]
fn batch_below_threshold_beats_unprotected() {
    // The headline below-threshold claim must survive the batch rewrite:
    // at g = ρ/4 the protected cycle beats the 27 unprotected gates.
    let g = 1.0 / 432.0;
    let mc = ConcatMc::new(1, toffoli(), 1);
    let est = mc.estimate_batch(&UniformNoise::new(g), 40_000, 11, 4);
    let baseline = unprotected_error(g, 27);
    assert!(
        est.rate < baseline,
        "protected {} not below unprotected {}",
        est.rate,
        baseline
    );
}

#[test]
fn batch_split_noise_matches_perfect_init_semantics() {
    // With perfect inits and g on gates only, the estimate must not exceed
    // the all-ops estimate (statistically: compare interval bounds).
    let mc = ConcatMc::new(1, toffoli(), 1);
    let g = 1.0 / 40.0;
    let all = mc.estimate_batch(&UniformNoise::new(g), 20_000, 5, 4);
    let split = mc.estimate_batch(&SplitNoise::perfect_init(g), 20_000, 6, 4);
    assert!(
        split.low <= all.high,
        "perfect-init {split:?} should not exceed all-ops {all:?}"
    );
}
