//! `repro` — regenerates every table and figure of
//! *“Reversible Fault-Tolerant Logic”* (Boykin & Roychowdhury, DSN 2005).
//!
//! ```text
//! repro [--quick] [--trials N] [--seed S] [--backend auto|scalar|batch]
//!       [--estimator plain|stratified|auto] [--rel-error E]
//!       [EXPERIMENT ...]
//! ```
//!
//! With no experiment IDs, everything runs. IDs (see DESIGN.md):
//! `table1 fig2 threshold suppression blowup levelreq local table2 entropy
//! nand advantage`.
//!
//! `--backend` selects the engine execution backend at runtime (the
//! default auto-routes by trial count); `--estimator` selects the
//! Monte-Carlo estimator — `plain` executes every trial, `stratified`
//! (also `stratified:<min_faults>` or `stratified:<min_faults>:<strata>`)
//! uses fault-count-stratified rare-event sampling with zero-fault
//! elision, and the default `auto` picks stratified whenever a point is
//! deep enough below threshold for it to pay; `--rel-error` enables
//! adaptive early stopping at the given target relative standard error.

use rft_analysis::experiments::{
    ablation, advantage, blowup, entropy, fig2, levelreq, local, nand, suppression, table1, table2,
    threshold, RunConfig,
};
use std::time::Instant;

const ALL: [&str; 12] = [
    "table1",
    "fig2",
    "blowup",
    "levelreq",
    "table2",
    "nand",
    "advantage",
    "ablation",
    "local",
    "entropy",
    "threshold",
    "suppression",
];

fn main() {
    let mut cfg = RunConfig::full();
    let mut chosen: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--trials" => {
                let v = args.next().expect("--trials needs a value");
                cfg.trials = v.parse().expect("--trials must be an integer");
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                cfg.seed = v.parse().expect("--seed must be an integer");
            }
            "--backend" => {
                let v = args.next().expect("--backend needs a value");
                cfg.backend = v.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--estimator" => {
                let v = args.next().expect("--estimator needs a value");
                cfg.estimator = v.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--rel-error" => {
                let v = args.next().expect("--rel-error needs a value");
                let target: f64 = v.parse().expect("--rel-error must be a number");
                assert!(
                    target > 0.0 && target.is_finite(),
                    "--rel-error must be positive"
                );
                cfg.target_rel_error = Some(target);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--trials N] [--seed S] \
                     [--backend auto|scalar|batch] \
                     [--estimator plain|stratified[:MIN[:STRATA]]|auto] \
                     [--rel-error E] [EXPERIMENT ...]"
                );
                println!("experiments: {}", ALL.join(" "));
                println!(
                    "estimators: plain executes every trial; stratified uses \
                     fault-count-stratified\nrare-event sampling (zero-fault words resolved \
                     analytically); auto (default)\npicks stratified for deep-sub-threshold \
                     points"
                );
                return;
            }
            id => chosen.push(id.to_string()),
        }
    }
    if chosen.is_empty() {
        chosen = ALL.iter().map(|s| s.to_string()).collect();
    }

    println!("Reversible Fault-Tolerant Logic — reproduction harness");
    println!(
        "config: trials = {}, seed = {}, threads = {}, backend = {}, estimator = {}{}\n",
        cfg.trials,
        cfg.seed,
        cfg.threads,
        cfg.backend,
        cfg.estimator,
        match cfg.target_rel_error {
            Some(t) => format!(", adaptive rel-error target = {t}"),
            None => String::new(),
        }
    );

    for id in &chosen {
        let start = Instant::now();
        println!("━━━ experiment: {id} ━━━");
        match id.as_str() {
            "table1" => table1::run().print(),
            "fig2" => fig2::run().print(),
            "threshold" => threshold::run(&cfg).print(),
            "suppression" => suppression::run(&cfg).print(),
            "blowup" => blowup::run().print(),
            "levelreq" => levelreq::run().print(),
            "local" => local::run(&cfg).print(),
            "table2" => table2::run().print(),
            "entropy" => entropy::run(&cfg).print(),
            "nand" => nand::run().print(),
            "advantage" => advantage::run().print(),
            "ablation" => ablation::run(&cfg).print(),
            other => {
                eprintln!("unknown experiment {other:?}; known: {}", ALL.join(" "));
                std::process::exit(2);
            }
        }
        println!("({} done in {:.1?})\n", id, start.elapsed());
    }
}
