//! `repro` — regenerates every table and figure of
//! *“Reversible Fault-Tolerant Logic”* (Boykin & Roychowdhury, DSN 2005).
//!
//! ```text
//! repro [list] [--quick] [--trials N] [--seed S] [--threads N]
//!       [--backend auto|scalar|batch]
//!       [--estimator plain|stratified[:MIN[:STRATA]]|auto]
//!       [--rel-error E] [--json DIR] [--check] [--quiet]
//!       [--trace FILE] [--metrics] [--tag TAG] [EXPERIMENT ...]
//! repro replay JOB.json [--threads N] [--stream]
//! ```
//!
//! Experiments are discovered through the
//! [`rft_analysis::experiment::registry`] (run `repro list` to print it)
//! and executed by the cross-point parallel runner under one shared
//! compile cache; with no experiment IDs, everything runs. `--tag TAG`
//! (repeatable) keeps only experiments carrying every given tag, for
//! both `list` and the run set — `repro list --tag detect` prints the
//! detection-subsystem slice of the registry, `repro --quick --tag
//! detect` runs it. Reports are deterministic per seed regardless of
//! `--threads`.
//!
//! `--json DIR` writes one schema-versioned `<id>.json` report per
//! experiment plus a `manifest.json` (config, git describe, wall times);
//! `--check` exits nonzero if any experiment self-check fails;
//! `--backend` selects the engine execution backend (the default
//! auto-routes by trial count); `--estimator` selects the Monte-Carlo
//! estimator (`auto` routes deep-sub-threshold points to fault-count-
//! stratified rare-event sampling); `--rel-error` enables adaptive early
//! stopping at the given target relative standard error.
//!
//! Observability: per-experiment progress lines go to stderr by default
//! (`--quiet` silences them); `--trace FILE` records spans from the
//! instrumentation layer and writes a Chrome-trace-event JSON viewable in
//! Perfetto or `chrome://tracing`; `--metrics` prints the aggregate
//! counter/gauge/histogram table after the run and attaches a `resources`
//! section to each report. Collection never perturbs results: reports are
//! byte-identical with or without `--trace`/`--metrics` (the `resources`
//! section is additive, and `--json` goldens are written without it
//! unless `--metrics` is given).
//!
//! `repro replay JOB.json` reproduces an `rft-serve` answer offline: the
//! file (or stdin via `-`) holds the job record every served final line
//! embeds (or a bare spec), and the command prints the identical final
//! NDJSON line — byte-for-byte, at any `--threads` — to stdout.
//! `--stream` also prints the per-round interval lines, reproducing the
//! full served stream. This is the determinism contract's offline half;
//! `scripts/serve_smoke.py` diffs the two in CI.
//!
//! Exit codes: 0 success, 1 failed self-check under `--check` (or an I/O
//! failure), 2 usage error.

use rft_analysis::experiment::{
    find, registry, run_experiments_with, Experiment, RunManifest, RunnerOptions,
};
use rft_analysis::experiments::RunConfig;
use rft_obs::Collector;
use std::process::ExitCode;
use std::time::Instant;

struct Cli {
    cfg: RunConfig,
    chosen: Vec<&'static dyn Experiment>,
    tags: Vec<String>,
    json_dir: Option<String>,
    check: bool,
    list: bool,
    quiet: bool,
    trace_file: Option<String>,
    metrics: bool,
}

/// Does `exp` carry every requested tag? (No tags requested = match.)
fn matches_tags(exp: &dyn Experiment, tags: &[String]) -> bool {
    tags.iter().all(|t| exp.tags().contains(&t.as_str()))
}

fn usage() -> String {
    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    format!(
        "usage: repro [list] [--quick] [--trials N] [--seed S] [--threads N]\n\
         \x20            [--backend auto|scalar|batch] [--width auto|1|2|4]\n\
         \x20            [--estimator plain|stratified[:MIN[:STRATA]]|auto]\n\
         \x20            [--rel-error E] [--json DIR] [--check] [--quiet]\n\
         \x20            [--trace FILE] [--metrics] [--tag TAG] [EXPERIMENT ...]\n\
         \x20      repro replay JOB.json [--threads N] [--stream]\n\
         experiments: {}\n\
         `repro list` prints the registry (id, title, tags); `--tag TAG` keeps\n\
         only experiments carrying TAG (repeatable; filters both `list` and the\n\
         run set, e.g. `repro list --tag detect`); `--json DIR` writes\n\
         one <id>.json report per experiment plus manifest.json; `--check` exits\n\
         nonzero if any experiment self-check fails; `--quiet` silences the\n\
         per-experiment stderr progress lines; `--trace FILE` writes a\n\
         Chrome-trace-event JSON of the run; `--metrics` prints the counter\n\
         table and attaches resource sections to reports.",
        ids.join(" ")
    )
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        cfg: RunConfig::full(),
        chosen: Vec::new(),
        tags: Vec::new(),
        json_dir: None,
        check: false,
        list: false,
        quiet: false,
        trace_file: None,
        metrics: false,
    };
    let raw: Vec<String> = args.collect();
    let mut i = 0usize;
    let mut quick = false;
    let mut explicit_trials: Option<u64> = None;
    let next_value = |i: &mut usize, flag: &str, raw: &[String]| -> Result<String, String> {
        *i += 1;
        raw.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < raw.len() {
        let arg = raw[i].as_str();
        match arg {
            "list" => cli.list = true,
            "--quick" => quick = true,
            "--trials" => {
                let v = next_value(&mut i, "--trials", &raw)?;
                let trials: u64 = v
                    .parse()
                    .map_err(|_| format!("--trials must be a positive integer, got {v:?}"))?;
                if trials == 0 {
                    return Err("--trials must be at least 1".into());
                }
                explicit_trials = Some(trials);
            }
            "--seed" => {
                let v = next_value(&mut i, "--seed", &raw)?;
                cli.cfg.seed = v
                    .parse()
                    .map_err(|_| format!("--seed must be an integer, got {v:?}"))?;
            }
            "--threads" => {
                let v = next_value(&mut i, "--threads", &raw)?;
                cli.cfg.threads = v
                    .parse()
                    .map_err(|_| format!("--threads must be a positive integer, got {v:?}"))?;
                if cli.cfg.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--backend" => {
                let v = next_value(&mut i, "--backend", &raw)?;
                cli.cfg.backend = v.parse()?;
            }
            "--estimator" => {
                let v = next_value(&mut i, "--estimator", &raw)?;
                cli.cfg.estimator = v.parse()?;
            }
            "--width" => {
                let v = next_value(&mut i, "--width", &raw)?;
                cli.cfg.width = v.parse()?;
            }
            "--rel-error" => {
                let v = next_value(&mut i, "--rel-error", &raw)?;
                let target: f64 = v
                    .parse()
                    .map_err(|_| format!("--rel-error must be a number, got {v:?}"))?;
                if !(target > 0.0 && target.is_finite()) {
                    return Err(format!("--rel-error must be positive and finite, got {v}"));
                }
                cli.cfg.target_rel_error = Some(target);
            }
            "--json" => {
                let v = next_value(&mut i, "--json", &raw)?;
                cli.json_dir = Some(v);
            }
            "--tag" => {
                let v = next_value(&mut i, "--tag", &raw)?;
                if !registry().iter().any(|e| e.tags().contains(&v.as_str())) {
                    let mut known: Vec<&str> =
                        registry().iter().flat_map(|e| e.tags()).copied().collect();
                    known.sort_unstable();
                    known.dedup();
                    return Err(format!("unknown tag {v:?}; known: {}", known.join(" ")));
                }
                cli.tags.push(v);
            }
            "--check" => cli.check = true,
            "--quiet" => cli.quiet = true,
            "--trace" => {
                let v = next_value(&mut i, "--trace", &raw)?;
                cli.trace_file = Some(v);
            }
            "--metrics" => cli.metrics = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}"));
            }
            id => match find(id) {
                // Dedup repeats: running an experiment twice would double
                // its wall-clock and put ambiguous entries in the manifest.
                Some(exp) => {
                    if !cli.chosen.iter().any(|e| e.id() == id) {
                        cli.chosen.push(exp);
                    }
                }
                None => {
                    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
                    return Err(format!(
                        "unknown experiment {id:?}; known: {}",
                        ids.join(" ")
                    ));
                }
            },
        }
        i += 1;
    }
    // Resolve the budget after parsing so flag order never matters: an
    // explicit --trials always wins over --quick's reduced budget (only
    // the trial count differs between quick() and full()).
    cli.cfg.trials = explicit_trials.unwrap_or(if quick {
        RunConfig::quick().trials
    } else {
        cli.cfg.trials
    });
    if cli.chosen.is_empty() {
        cli.chosen = registry().to_vec();
    }
    if !cli.tags.is_empty() {
        cli.chosen.retain(|e| matches_tags(*e, &cli.tags));
        if cli.chosen.is_empty() {
            return Err(format!(
                "no selected experiment carries all of: {}",
                cli.tags.join(", ")
            ));
        }
    }
    Ok(cli)
}

fn print_registry(tags: &[String]) {
    let mut table =
        rft_analysis::report::Table::new("experiment registry", &["id", "title", "tags"]);
    for exp in registry() {
        if !matches_tags(*exp, tags) {
            continue;
        }
        table.row(&[
            exp.id().to_string(),
            exp.title().to_string(),
            exp.tags().join(", "),
        ]);
    }
    table.print();
}

fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    (!s.is_empty()).then(|| s.to_string())
}

/// `repro replay JOB.json [--threads N] [--stream]` — reproduce a served
/// job offline and print the canonical final line (plus, with
/// `--stream`, every interval line the daemon streamed).
fn run_replay(args: &[String]) -> ExitCode {
    use rft_analysis::experiment::CompileCache;
    use rft_analysis::job::{run_job_streaming, JobControl, JobRecord, JobSpec};

    let mut file: Option<&str> = None;
    let mut threads = 1usize;
    let mut stream = false;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => threads = n,
                    _ => {
                        eprintln!("repro replay: --threads needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--stream" => stream = true,
            "--help" | "-h" => {
                println!("usage: repro replay JOB.json [--threads N] [--stream]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') && flag != "-" => {
                eprintln!("repro replay: unknown flag {flag:?}");
                return ExitCode::from(2);
            }
            path if file.is_none() => file = Some(path),
            extra => {
                eprintln!("repro replay: unexpected argument {extra:?}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let Some(path) = file else {
        eprintln!("usage: repro replay JOB.json [--threads N] [--stream]");
        return ExitCode::from(2);
    };
    let body = if path == "-" {
        use std::io::Read;
        let mut s = String::new();
        match std::io::stdin().read_to_string(&mut s) {
            Ok(_) => s,
            Err(e) => {
                eprintln!("repro replay: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("repro replay: cannot read {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    // Accept the same shapes the daemon does: a full record, a bare
    // spec, or — for one-command replays — a served final line (whose
    // embedded record is extracted through the same deserializer).
    let record = match serde_json::from_str::<rft_analysis::job::FinalUpdate>(&body) {
        Ok(final_update) => final_update.record,
        Err(_) => match serde_json::from_str::<JobRecord>(&body) {
            Ok(r) => r,
            Err(_) => match serde_json::from_str::<JobSpec>(&body) {
                Ok(spec) => JobRecord::new(spec),
                Err(e) => {
                    eprintln!("repro replay: {path:?} is not a job record: {e}");
                    return ExitCode::FAILURE;
                }
            },
        },
    };
    let cache = CompileCache::new();
    let obs = Collector::disabled();
    let outcome = run_job_streaming(&cache, &obs, &record, threads, |update| {
        if stream {
            match serde_json::to_string(update) {
                Ok(line) => println!("{line}"),
                Err(e) => eprintln!("repro replay: cannot serialize update: {e}"),
            }
        }
        JobControl::Continue
    });
    match outcome {
        Ok(Some(final_update)) => {
            println!("{}", final_update.to_line());
            ExitCode::SUCCESS
        }
        Ok(None) => unreachable!("offline replay is never cancelled"),
        Err(msg) => {
            eprintln!("repro replay: invalid job: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("replay") {
        return run_replay(&argv[1..]);
    }
    let cli = match parse_args(argv.into_iter()) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("repro: {msg}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    if cli.list {
        print_registry(&cli.tags);
        return ExitCode::SUCCESS;
    }
    // Probe the output directory before spending minutes of Monte-Carlo:
    // a typo'd or unwritable --json path should fail in milliseconds.
    if let Some(dir) = &cli.json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("repro: cannot create --json directory {dir:?}: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("Reversible Fault-Tolerant Logic — reproduction harness");
    println!(
        "config: trials = {}, seed = {}, threads = {}, backend = {}, estimator = {}{}\n",
        cli.cfg.trials,
        cli.cfg.seed,
        cli.cfg.threads,
        cli.cfg.backend,
        cli.cfg.estimator,
        match cli.cfg.target_rel_error {
            Some(t) => format!(", adaptive rel-error target = {t}"),
            None => String::new(),
        }
    );

    // One live collector feeds every observability surface; when none is
    // requested the runner gets a disabled handle and collection costs a
    // single branch per call site. Either way the Monte-Carlo results are
    // identical — instrumentation never touches an RNG stream.
    let watch = cli.trace_file.is_some() || cli.metrics;
    let opts = RunnerOptions {
        obs: if watch {
            Collector::new()
        } else {
            Collector::disabled()
        },
        progress: !cli.quiet,
        attach_resources: cli.metrics,
    };

    let start = Instant::now();
    let runs = run_experiments_with(&cli.chosen, &cli.cfg, &opts);
    let total = start.elapsed();

    let mut all_passed = true;
    for run in &runs {
        println!("━━━ experiment: {} ━━━", run.id);
        run.report.print();
        println!("({} done in {:.1?})\n", run.id, run.wall);
        for check in run.report.failed_checks() {
            all_passed = false;
            eprintln!(
                "repro: CHECK FAILED [{}] {}: got {}, want {}",
                run.id, check.name, check.got, check.want
            );
        }
    }
    println!(
        "{} experiment(s) in {:.1?} (threads = {})",
        runs.len(),
        total,
        cli.cfg.threads
    );

    if cli.metrics {
        println!();
        print!("{}", opts.obs.snapshot().render_table());
    }
    if let Some(file) = &cli.trace_file {
        if let Err(e) = std::fs::write(file, opts.obs.trace_json()) {
            eprintln!("repro: cannot write trace {file:?}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[repro] wrote {} trace span(s) to {file}",
            opts.obs.span_events().len()
        );
    }

    if let Some(dir) = &cli.json_dir {
        let mut manifest = RunManifest::new(cli.cfg, git_describe(), total);
        for run in &runs {
            let file = format!("{}.json", run.id);
            let path = std::path::Path::new(dir).join(&file);
            if let Err(e) = std::fs::write(&path, run.report.to_json()) {
                eprintln!("repro: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            manifest.push(run, file);
        }
        let path = std::path::Path::new(dir).join("manifest.json");
        if let Err(e) = std::fs::write(&path, manifest.to_json()) {
            eprintln!("repro: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} report(s) + manifest.json to {dir}/", runs.len());
    }

    if cli.check && !all_passed {
        eprintln!("repro: some self-checks failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
