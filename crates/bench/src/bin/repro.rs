//! `repro` — regenerates every table and figure of
//! *“Reversible Fault-Tolerant Logic”* (Boykin & Roychowdhury, DSN 2005).
//!
//! ```text
//! repro [--quick] [--trials N] [--seed S] [--backend auto|scalar|batch]
//!       [--rel-error E] [EXPERIMENT ...]
//! ```
//!
//! With no experiment IDs, everything runs. IDs (see DESIGN.md):
//! `table1 fig2 threshold suppression blowup levelreq local table2 entropy
//! nand advantage`.
//!
//! `--backend` selects the engine execution backend at runtime (the
//! default auto-routes by trial count); `--rel-error` enables adaptive
//! early stopping at the given target relative standard error.

use rft_analysis::experiments::{
    ablation, advantage, blowup, entropy, fig2, levelreq, local, nand, suppression, table1, table2,
    threshold, RunConfig,
};
use std::time::Instant;

const ALL: [&str; 12] = [
    "table1",
    "fig2",
    "blowup",
    "levelreq",
    "table2",
    "nand",
    "advantage",
    "ablation",
    "local",
    "entropy",
    "threshold",
    "suppression",
];

fn main() {
    let mut cfg = RunConfig::full();
    let mut chosen: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = RunConfig::quick(),
            "--trials" => {
                let v = args.next().expect("--trials needs a value");
                cfg.trials = v.parse().expect("--trials must be an integer");
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                cfg.seed = v.parse().expect("--seed must be an integer");
            }
            "--backend" => {
                let v = args.next().expect("--backend needs a value");
                cfg.backend = v.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--rel-error" => {
                let v = args.next().expect("--rel-error needs a value");
                let target: f64 = v.parse().expect("--rel-error must be a number");
                assert!(
                    target > 0.0 && target.is_finite(),
                    "--rel-error must be positive"
                );
                cfg.target_rel_error = Some(target);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--trials N] [--seed S] \
                     [--backend auto|scalar|batch] [--rel-error E] [EXPERIMENT ...]"
                );
                println!("experiments: {}", ALL.join(" "));
                return;
            }
            id => chosen.push(id.to_string()),
        }
    }
    if chosen.is_empty() {
        chosen = ALL.iter().map(|s| s.to_string()).collect();
    }

    println!("Reversible Fault-Tolerant Logic — reproduction harness");
    println!(
        "config: trials = {}, seed = {}, threads = {}, backend = {}{}\n",
        cfg.trials,
        cfg.seed,
        cfg.threads,
        cfg.backend,
        match cfg.target_rel_error {
            Some(t) => format!(", adaptive rel-error target = {t}"),
            None => String::new(),
        }
    );

    for id in &chosen {
        let start = Instant::now();
        println!("━━━ experiment: {id} ━━━");
        match id.as_str() {
            "table1" => table1::run().print(),
            "fig2" => fig2::run().print(),
            "threshold" => threshold::run(&cfg).print(),
            "suppression" => suppression::run(&cfg).print(),
            "blowup" => blowup::run().print(),
            "levelreq" => levelreq::run().print(),
            "local" => local::run(&cfg).print(),
            "table2" => table2::run().print(),
            "entropy" => entropy::run(&cfg).print(),
            "nand" => nand::run().print(),
            "advantage" => advantage::run().print(),
            "ablation" => ablation::run(&cfg).print(),
            other => {
                eprintln!("unknown experiment {other:?}; known: {}", ALL.join(" "));
                std::process::exit(2);
            }
        }
        println!("({} done in {:.1?})\n", id, start.elapsed());
    }
}
