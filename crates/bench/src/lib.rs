//! # rft-bench — benchmarks and the `repro` table/figure regenerator
//!
//! Criterion benchmark groups live in `benches/` (one file per experiment
//! family); the `repro` binary regenerates every table and figure of the
//! paper — see `repro --help`.

#![warn(missing_docs)]
