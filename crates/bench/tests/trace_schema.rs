//! Schema tests for the Chrome-trace-event output of the observability
//! layer: span nesting must be well-formed (intervals on one thread are
//! disjoint or properly contained, never partially overlapping), thread
//! ids must be stable for a fixed `--threads`, and the emitted JSON must
//! carry exactly one complete event per recorded span plus one
//! `thread_name` metadata record per thread.

use rft_analysis::experiment::{registry, run_experiments_with, RunnerOptions};
use rft_analysis::experiments::RunConfig;
use rft_obs::{Collector, SpanEvent};
use std::collections::BTreeSet;

fn traced_quick_run(threads: usize) -> (Collector, usize) {
    let cfg = RunConfig {
        threads,
        ..RunConfig::quick()
    };
    let obs = Collector::new();
    let opts = RunnerOptions {
        obs: obs.clone(),
        progress: false,
        attach_resources: false,
    };
    let runs = run_experiments_with(registry(), &cfg, &opts);
    (obs, runs.len())
}

/// Two intervals on the same thread either nest or are disjoint. Shared
/// endpoints are allowed: a child may start the same nanosecond its
/// parent does.
fn properly_nested(a: &SpanEvent, b: &SpanEvent) -> bool {
    let (a0, a1) = (a.ts_ns, a.ts_ns + a.dur_ns);
    let (b0, b1) = (b.ts_ns, b.ts_ns + b.dur_ns);
    let disjoint = a1 <= b0 || b1 <= a0;
    let a_in_b = b0 <= a0 && a1 <= b1;
    let b_in_a = a0 <= b0 && b1 <= a1;
    disjoint || a_in_b || b_in_a
}

#[test]
fn span_nesting_is_well_formed_per_thread() {
    let (obs, n_experiments) = traced_quick_run(2);
    let events = obs.span_events();
    assert!(!events.is_empty(), "run recorded no spans");
    // Every experiment got its attribution span.
    let experiment_spans = events.iter().filter(|e| e.name == "experiment").count();
    assert_eq!(experiment_spans, n_experiments);
    // Pairwise nesting check per thread. Quick runs produce a few
    // hundred spans, so quadratic is fine and keeps the check obvious.
    let tids: BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    for tid in tids {
        let on_thread: Vec<&SpanEvent> = events.iter().filter(|e| e.tid == tid).collect();
        for (i, a) in on_thread.iter().enumerate() {
            for b in &on_thread[i + 1..] {
                assert!(
                    properly_nested(a, b),
                    "spans {:?} and {:?} partially overlap on tid {tid}",
                    (a.name, a.ts_ns, a.dur_ns),
                    (b.name, b.ts_ns, b.dur_ns)
                );
            }
        }
    }
}

#[test]
fn thread_ids_are_stable_for_fixed_threads() {
    // threads = 1 pins all work to the calling thread: one tid, and the
    // same tid again on a second run in the same process.
    let (first, _) = traced_quick_run(1);
    let first_tids: BTreeSet<u64> = first.span_events().iter().map(|e| e.tid).collect();
    assert_eq!(first_tids.len(), 1, "threads=1 must use exactly one thread");
    let (second, _) = traced_quick_run(1);
    let second_tids: BTreeSet<u64> = second.span_events().iter().map(|e| e.tid).collect();
    assert_eq!(
        first_tids, second_tids,
        "tid for the calling thread drifted between identical runs"
    );
}

#[test]
fn trace_json_round_trips_the_recorded_spans() {
    let (obs, _) = traced_quick_run(2);
    let events = obs.span_events();
    let json = obs.trace_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    // One complete ("ph":"X") event per span, one metadata ("ph":"M")
    // record per distinct thread.
    let complete = json.matches("\"ph\":\"X\"").count();
    assert_eq!(complete, events.len());
    let tids: BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    let metadata = json.matches("\"ph\":\"M\"").count();
    assert_eq!(metadata, tids.len());
    for tid in &tids {
        assert!(
            json.contains(&format!("\"tid\":{tid}")),
            "tid {tid} missing from trace JSON"
        );
    }
    // Span names survive verbatim; labels are attached as args.
    for name in [
        "engine.estimate",
        "engine.words",
        "sched.point",
        "experiment",
    ] {
        assert!(
            json.contains(&format!("\"name\":\"{name}\"")),
            "span {name:?} missing from trace JSON"
        );
    }
    assert!(json.contains("\"args\":{\"label\":"));
    // Timestamps are microseconds with fixed 3-decimal precision — spot
    // check the first complete event against its span record.
    let first = events
        .iter()
        .min_by_key(|e| (e.ts_ns, e.tid, e.dur_ns))
        .unwrap();
    let ts_us = format!("\"ts\":{}.{:03}", first.ts_ns / 1_000, first.ts_ns % 1_000);
    assert!(
        json.contains(&ts_us),
        "first span's timestamp {ts_us} not found in trace JSON"
    );
}
