//! Compiled micro-op word loops vs the raw op-at-a-time loops.
//!
//! The `fused_vs_raw` group is the PR 5 headline, on the two op streams
//! the reproduction actually runs hot (27-op Figure-2 recovery cycle,
//! 585-op level-2 concatenated Toffoli):
//!
//! - `run_*` — the **sampled** word loop (`batch_raw_exec`-equivalent,
//!   same `g = 1/165` noise as BENCH_batch.json): `run_raw_w1` is the
//!   pre-IR [`Engine::run_batch`]; `run_fused_w1`/`run_fused_w4` is the
//!   compiled program via [`Engine::run_batch_fused`]. This loop is
//!   bounded by the pinned RNG stream (one mask draw per op per word,
//!   plus every fault's placement and plane draws), so the win here is
//!   the kernel/dispatch share only.
//! - `masked_*` — the **masked** word loop (the stratified rare-event
//!   executor, [`Engine::run_batch_masked`] vs the raw reference):
//!   `clean` runs an all-clear schedule (the fused floor — what a
//!   schedule-clean word costs), `sparse` a plain-MC-like `g = 10⁻³`
//!   schedule. This is where fusion + wide words pay ≥ 2×.
//!
//! Throughput is lanes (trials) per iteration so criterion's elements/s
//! are comparable across widths. `stratified_width` times the full
//! stratified estimate (mask building included) at widths 1 and 4.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rft_analysis::prelude::*;
use rft_core::ftcheck::transversal_cycle;
use rft_revsim::engine::WordWidth;
use rft_revsim::prelude::*;
use std::hint::black_box;

fn toffoli() -> Gate {
    Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    }
}

fn streams() -> Vec<(&'static str, Circuit)> {
    let fig2 = transversal_cycle(&toffoli()).circuit().clone();
    let level2 = ConcatMc::new(2, toffoli(), 1).program().circuit().clone();
    vec![("fig2_27_ops", fig2), ("level2_585_ops", level2)]
}

/// Raw vs fused word execution, sampled and masked paths.
fn fused_vs_raw(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_vs_raw");
    group.sample_size(20);
    for (name, circuit) in streams() {
        let n = circuit.n_wires();

        // Sampled loop at the BENCH_batch.json noise.
        let engine = Engine::compile(&circuit, &UniformNoise::new(1.0 / 165.0));
        let stats = engine.compile_stats();
        assert!(
            stats.max_segment_len > 1,
            "{name}: fusion disabled (no >1-op segments)"
        );
        group.throughput(Throughput::Elements(64));
        group.bench_function(format!("run_raw_w1/{name}"), |b| {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut batch = BatchState::zeros(n, 1);
            b.iter(|| black_box(engine.run_batch(&mut batch, &mut rng).fault_events));
        });
        group.bench_function(format!("run_fused_w1/{name}"), |b| {
            let mut rngs = [SmallRng::seed_from_u64(3)];
            let mut batch = BatchState::zeros(n, 1);
            b.iter(|| black_box(engine.run_batch_fused(&mut batch, &mut rngs).fault_events));
        });
        group.throughput(Throughput::Elements(256));
        group.bench_function(format!("run_fused_w4/{name}"), |b| {
            let mut rngs: [SmallRng; 4] =
                std::array::from_fn(|k| SmallRng::seed_from_u64(3 + k as u64));
            let mut batch = BatchState::zeros(n, 4);
            b.iter(|| {
                black_box(
                    engine
                        .run_batch_fused(&mut batch, &mut rngs[..])
                        .fault_events,
                )
            });
        });

        // Masked (rare-event) loop at the BENCH_rare_event.json noise.
        let engine = Engine::compile(&circuit, &UniformNoise::new(1e-3));
        let n_ops = circuit.len();
        let clean = vec![0u64; n_ops];
        let mut seeder = SmallRng::seed_from_u64(99);
        let sparse: Vec<u64> = (0..n_ops)
            .map(|_| {
                (0..64).fold(0u64, |v, _| {
                    (v << 1) | u64::from(seeder.random::<f64>() < 1e-3)
                })
            })
            .collect();
        for (sched, masks) in [("clean", &clean), ("sparse_g1e-3", &sparse)] {
            group.throughput(Throughput::Elements(64));
            group.bench_function(format!("masked_{sched}_raw_w1/{name}"), |b| {
                let mut rng = SmallRng::seed_from_u64(5);
                let mut batch = BatchState::zeros(n, 1);
                b.iter(|| {
                    black_box(
                        engine
                            .run_batch_masked_raw(&mut batch, masks, &mut rng)
                            .fault_events,
                    )
                });
            });
            group.throughput(Throughput::Elements(256));
            group.bench_function(format!("masked_{sched}_fused_w4/{name}"), |b| {
                let mut rngs: [SmallRng; 4] =
                    std::array::from_fn(|k| SmallRng::seed_from_u64(5 + k as u64));
                let mut batch = BatchState::zeros(n, 4);
                let mut flat = vec![0u64; n_ops * 4];
                for (i, &m) in masks.iter().enumerate() {
                    flat[i * 4..(i + 1) * 4].fill(m);
                }
                b.iter(|| {
                    black_box(
                        engine
                            .run_batch_masked(&mut batch, &flat, &mut rngs[..])
                            .fault_events,
                    )
                });
            });
        }
    }
    group.finish();
}

/// The full stratified (masked-schedule) estimate at widths 1 and 4 —
/// the rare-event path end to end, conditional mask building included.
fn stratified_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratified_width");
    group.sample_size(10);
    let mc = ConcatMc::new(2, toffoli(), 1);
    let noise = UniformNoise::new(1e-3);
    let engine = mc.engine(&noise);
    const TRIALS: u64 = 16_384;
    group.throughput(Throughput::Elements(TRIALS));
    for width in [WordWidth::W1, WordWidth::W4] {
        group.bench_function(format!("level2_g1e-3_w{width}"), |b| {
            let opts = McOptions::new(TRIALS)
                .seed(1)
                .threads(1)
                .stratified(4, 4)
                .width(width);
            b.iter(|| black_box(engine.estimate(&mc.trial(), &opts).failures));
        });
    }
    group.finish();
}

criterion_group!(benches, fused_vs_raw, stratified_width);
criterion_main!(benches);
