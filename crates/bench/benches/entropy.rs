//! §4 entropy benchmarks: reset-entropy measurement and the exhaustive
//! NAND-optimality search.

use criterion::{criterion_group, criterion_main, Criterion};
use rft_analysis::prelude::*;
use rft_core::entropy::optimal_nand_dissipation;
use rft_core::prelude::*;
use rft_revsim::prelude::*;
use std::hint::black_box;

fn entropy_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy");
    group.sample_size(10);
    group.bench_function("nand_exhaustive_search", |b| {
        b.iter(|| black_box(optimal_nand_dissipation().0));
    });
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let mut builder = FtBuilder::new(1, 3);
    builder.apply(&gate).apply(&gate);
    let program = builder.finish();
    let input = program.encode(&BitState::zeros(3));
    let noise = UniformNoise::new(1e-2);
    group.bench_function("reset_entropy_1k_trials", |b| {
        b.iter(|| {
            black_box(
                measure_reset_entropy(program.circuit(), &input, &noise, 1000, 7).bits_per_run,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, entropy_benches);
criterion_main!(benches);
