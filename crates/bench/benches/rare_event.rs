//! Rare-event Monte-Carlo: the fault-count-stratified estimator against
//! plain MC in the deep-sub-threshold regime.
//!
//! Two kinds of measurement:
//!
//! 1. **Fixed-budget timing** (`rare_event_estimate`): wall-clock of one
//!    estimation round trip per estimator at `g ∈ {1e-2, 1e-3, 1e-4}` on
//!    the level-1 cycle — the per-word overhead of conditional mask
//!    generation, measured honestly at equal trial counts.
//! 2. **Cost-to-precision summaries** (`rare_event_words`,
//!    `rare_event_level2`): executed 64-lane circuit words needed to reach
//!    a target relative standard error — the metric that actually matters
//!    for rare events, where plain MC burns its budget on fault-free
//!    words. These lines carry custom fields and are appended to the
//!    `CRITERION_JSON` file alongside the timing lines.
//!
//! `RARE_EVENT_PROFILE=quick` shrinks budgets for CI smoke runs; the
//! checked-in `BENCH_rare_event.json` baseline comes from a full run.

use criterion::{black_box, BenchmarkId, Criterion, Throughput};
use rft_analysis::prelude::*;
use rft_revsim::prelude::*;
use std::io::Write as _;
use std::time::Instant;

fn toffoli() -> Gate {
    Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    }
}

/// Appends one JSON line to `CRITERION_JSON` (if set) and echoes it.
fn emit(line: String) {
    println!("summary {line}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

fn measure(
    mc: &ConcatMc,
    noise: &UniformNoise,
    opts: &McOptions,
) -> (McOutcome, ErrorEstimate, f64) {
    let start = Instant::now();
    let outcome = mc.estimate_outcome(noise, opts);
    let secs = start.elapsed().as_secs_f64();
    let est = ErrorEstimate::from(outcome.clone());
    (outcome, est, secs)
}

/// Fixed-budget timing: estimator overhead at equal trial counts.
fn fixed_budget_timing(c: &mut Criterion, quick: bool) {
    let mut group = c.benchmark_group("rare_event_estimate");
    group.sample_size(10);
    let mc = ConcatMc::new(1, toffoli(), 1);
    let trials: u64 = if quick { 1 << 12 } else { 1 << 16 };
    for &g in &[1e-2f64, 1e-3, 1e-4] {
        let noise = UniformNoise::new(g);
        group.throughput(Throughput::Elements(trials));
        group.bench_with_input(
            BenchmarkId::new("plain", format!("g{g:.0e}")),
            &g,
            |b, _| {
                let opts = McOptions::new(trials).seed(1).estimator(Estimator::Plain);
                b.iter(|| black_box(mc.estimate_outcome(&noise, &opts).failures));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stratified", format!("g{g:.0e}")),
            &g,
            |b, _| {
                let opts = McOptions::new(trials)
                    .seed(1)
                    .estimator(Estimator::DEFAULT_STRATIFIED);
                b.iter(|| black_box(mc.estimate_outcome(&noise, &opts).failures));
            },
        );
    }
    group.finish();
}

/// Words-to-target: executed circuit words each estimator needs to reach
/// the same relative-error target on the level-1 cycle.
fn words_to_target(quick: bool) {
    let mc = ConcatMc::new(1, toffoli(), 1);
    let target = if quick { 0.15 } else { 0.10 };
    let gs: &[f64] = if quick {
        &[1e-2, 1e-3]
    } else {
        &[1e-2, 1e-3, 1e-4]
    };
    for &g in gs {
        let noise = UniformNoise::new(g);
        // Generous caps: both estimators should stop on the target, not
        // the budget (the plain cap scales with 1/p ≈ 1/(c·g²)).
        let plain_cap: u64 = if quick { 1 << 22 } else { 1 << 28 };
        let strat_cap: u64 = plain_cap;
        let (plain_out, plain_est, plain_secs) = measure(
            &mc,
            &noise,
            &McOptions::new(plain_cap)
                .seed(3)
                .estimator(Estimator::Plain)
                .target_rel_error(target),
        );
        let (strat_out, strat_est, strat_secs) = measure(
            &mc,
            &noise,
            &McOptions::new(strat_cap)
                .seed(4)
                .estimator(Estimator::DEFAULT_STRATIFIED)
                .target_rel_error(target),
        );
        // The distance-justified variant: the level-1 cycle provably
        // corrects any single fault (ftcheck), so `min_faults = 2` elides
        // the k ≤ 1 strata entirely.
        let (strat2_out, strat2_est, strat2_secs) = measure(
            &mc,
            &noise,
            &McOptions::new(strat_cap)
                .seed(4)
                .stratified(2, 4)
                .target_rel_error(target),
        );
        let ratio = plain_out.executed_words as f64 / strat_out.executed_words.max(1) as f64;
        let ratio2 = plain_out.executed_words as f64 / strat2_out.executed_words.max(1) as f64;
        // The mass plain MC wastes on a-priori-known outcomes at this g.
        let p0 = fault_free_probability(mc.program().circuit(), &noise);
        emit(format!(
            "{{\"group\":\"rare_event_words\",\"bench\":\"level1_g{g:.0e}\",\
             \"target_rel_error\":{target},\"p_fault_free\":{p0:.6},\
             \"plain_words\":{},\"strat_words\":{},\"strat2_words\":{},\
             \"words_ratio\":{ratio:.2},\"words_ratio_min2\":{ratio2:.2},\
             \"plain_rate\":{:.6e},\"strat_rate\":{:.6e},\"strat2_rate\":{:.6e},\
             \"plain_secs\":{plain_secs:.3},\"strat_secs\":{strat_secs:.3},\
             \"strat2_secs\":{strat2_secs:.3},\
             \"plain_stopped\":{},\"strat_stopped\":{},\"strat2_stopped\":{}}}",
            plain_out.executed_words,
            strat_out.executed_words,
            strat2_out.executed_words,
            plain_est.rate,
            strat_est.rate,
            strat2_est.rate,
            plain_out.early_stopped,
            strat_out.early_stopped,
            strat2_out.early_stopped,
        ));
    }
}

/// Level-2 resolution at g = 1e-3: measurements plain MC cannot bracket
/// in any practical budget (the measured rates sit three orders of
/// magnitude below even the Equation 2 bound `ρ(g/ρ)⁴ ≈ 4.5·10⁻⁶`, so
/// 10⁶ plain trials expect exactly zero failures).
///
/// `min_faults = 4` is the concatenation-distance elision: the exhaustive
/// single-fault sweep of `rft_core::ftcheck` proves every level-1 block
/// corrects any single fault, and the outer level corrects any single
/// corrupted block, so a level-2 logical failure needs at least
/// `2² = 4` physical faults — strata `K ≤ 3` contribute exactly zero.
///
/// The cost of the stratified estimate scales as `w₄/p` (trials ≈
/// `0.65·w₄/(t²·p)`), and the `K = 4` mass `w₄ ≈ (n_ops·g)⁴/24` falls
/// with the fourth power of the circuit size while the rate falls only
/// polynomially — so the level-2 CNOT (≈ 2/3 the ops of the Toffoli)
/// resolves several times faster and is the headline scenario; the
/// full-profile run also records the level-2 Toffoli.
fn level2_resolution(quick: bool) {
    let cnot = Gate::Cnot {
        control: w(0),
        target: w(1),
    };
    level2_point("level2_cnot_g1e-3_min4", cnot, quick);
    if !quick {
        level2_point("level2_toffoli_g1e-3_min4", toffoli(), false);
    }
}

fn level2_point(bench: &str, gate: Gate, quick: bool) {
    let mc = ConcatMc::new(2, gate, 1);
    let g = 1e-3;
    let noise = UniformNoise::new(g);
    let target = if quick { 0.5 } else { 0.2 };
    let cap: u64 = if quick { 1 << 23 } else { 1 << 28 };
    let (out, est, secs) = measure(
        &mc,
        &noise,
        &McOptions::new(cap)
            .seed(5)
            .stratified(4, 4)
            .target_rel_error(target),
    );
    let rel_se = stratified_rel_se(&out);
    let rel_half = if est.rate > 0.0 {
        (est.high - est.low) / (2.0 * est.rate)
    } else {
        f64::INFINITY
    };
    // The plain-MC foil: 10⁶ trials at the same point.
    let plain_budget = 1_000_000u64;
    let (plain_out, plain_est, plain_secs) = measure(
        &mc,
        &noise,
        &McOptions::new(plain_budget)
            .seed(6)
            .estimator(Estimator::Plain),
    );
    emit(format!(
        "{{\"group\":\"rare_event_level2\",\"bench\":\"{bench}\",\
         \"target_rel_error\":{target},\
         \"rate\":{:.6e},\"low\":{:.6e},\"high\":{:.6e},\
         \"rel_std_error\":{rel_se:.3},\"rel_half_width\":{rel_half:.3},\
         \"words\":{},\"seconds\":{secs:.3},\"threads\":1,\
         \"cond_failures\":{},\"cond_trials\":{},\
         \"plain_1M_failures\":{},\"plain_1M_low\":{:.6e},\"plain_1M_high\":{:.6e},\
         \"plain_1M_secs\":{plain_secs:.3}}}",
        est.rate,
        est.low,
        est.high,
        out.executed_words,
        out.failures,
        out.trials,
        plain_out.failures,
        plain_est.low,
        plain_est.high,
    ));
}

/// Achieved relative standard error of a stratified outcome
/// (`√(Σ wₖ² q̂ₖ(1−q̂ₖ)/nₖ) / p̂`).
fn stratified_rel_se(out: &McOutcome) -> f64 {
    let mut rate = 0.0;
    let mut var = 0.0;
    for s in &out.strata {
        if s.trials == 0 || s.weight <= 0.0 {
            continue;
        }
        let n = s.trials as f64;
        let q = s.failures as f64 / n;
        rate += s.weight * q;
        var += s.weight * s.weight * q * (1.0 - q) / n;
    }
    if rate > 0.0 {
        var.sqrt() / rate
    } else {
        f64::INFINITY
    }
}

fn main() {
    let quick = std::env::var("RARE_EVENT_PROFILE")
        .map(|v| v == "quick")
        .unwrap_or(false);
    let mut c = Criterion::default();
    fixed_budget_timing(&mut c, quick);
    words_to_target(quick);
    level2_resolution(quick);
}
