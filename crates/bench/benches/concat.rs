//! Figure 3 / §2.3: concatenated compilation and execution cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rft_core::prelude::*;
use rft_revsim::prelude::*;
use std::hint::black_box;

fn compile_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("concat_compile");
    group.sample_size(10);
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    for level in 0..=3u8 {
        group.bench_with_input(
            BenchmarkId::new("single_gate", level),
            &level,
            |b, &level| {
                b.iter(|| {
                    let mut builder = FtBuilder::new(level, 3);
                    builder.apply(&gate);
                    black_box(builder.finish().circuit().len())
                });
            },
        );
    }
    group.finish();
}

fn run_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("concat_execute");
    group.sample_size(10);
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    for level in 1..=3u8 {
        let mut builder = FtBuilder::new(level, 3);
        builder.apply(&gate);
        let program = builder.finish();
        let encoded = program.encode(&BitState::from_u64(0b011, 3));
        group.bench_with_input(BenchmarkId::new("ideal_cycle", level), &level, |b, _| {
            b.iter(|| {
                let mut s = encoded.clone();
                program.circuit().run(&mut s);
                black_box(program.decode(&s).to_u64())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, compile_levels, run_levels);
criterion_main!(benches);
