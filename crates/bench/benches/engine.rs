//! Engine facade overhead: what compile-once costs, and what the facade
//! adds on top of raw backend execution.
//!
//! `engine_compile` measures [`Engine::compile`] alone — a single pass
//! over the op stream building the fault table — for the three circuit
//! scales the reproduction actually runs (27-op Figure-2 cycle, level-1
//! and level-2 concatenated programs). `engine_estimate` measures a full
//! facade round trip (compile + auto-routed batch estimation + adaptive
//! variant) so regressions in dispatch or the word runner show up next to
//! the raw numbers in BENCH_batch.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rft_analysis::prelude::*;
use rft_core::ftcheck::transversal_cycle;
use rft_revsim::prelude::*;
use std::hint::black_box;

fn toffoli() -> Gate {
    Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    }
}

/// Compile-once cost across circuit scales.
fn engine_compile_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_compile");
    group.sample_size(20);
    let noise = UniformNoise::new(1.0 / 165.0);

    let spec = transversal_cycle(&toffoli());
    group.throughput(Throughput::Elements(spec.circuit().len() as u64));
    group.bench_function("fig2_cycle_27_ops", |b| {
        b.iter(|| black_box(Engine::compile(spec.circuit(), &noise).n_ops()));
    });

    for level in [1u8, 2] {
        let mc = ConcatMc::new(level, toffoli(), 1);
        let ops = mc.program().circuit().len() as u64;
        group.throughput(Throughput::Elements(ops));
        group.bench_with_input(BenchmarkId::new("concat_level", level), &level, |b, _| {
            b.iter(|| black_box(mc.engine(&noise).n_ops()));
        });
    }
    group.finish();
}

/// Full facade round trips: compile + estimate.
///
/// These pin [`Estimator::Plain`] so the numbers stay comparable with the
/// checked-in BENCH_engine.json baseline (and with `batch_raw_exec` in
/// BENCH_batch.json); the stratified estimator has its own bench in
/// `benches/rare_event.rs`.
fn engine_estimate_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_estimate");
    group.sample_size(10);
    let spec = transversal_cycle(&toffoli());
    let noise = UniformNoise::new(1.0 / 165.0);
    const TRIALS: u64 = 4_096;
    group.throughput(Throughput::Elements(TRIALS));
    group.bench_function("auto_4k_trials", |b| {
        let opts = McOptions::new(TRIALS)
            .seed(1)
            .threads(1)
            .estimator(Estimator::Plain);
        b.iter(|| black_box(estimate_cycle_error(&spec, &noise, &opts).failures));
    });
    group.bench_function("adaptive_rel20_4k_cap", |b| {
        let opts = McOptions::new(TRIALS)
            .seed(1)
            .threads(1)
            .estimator(Estimator::Plain)
            .target_rel_error(0.2);
        b.iter(|| black_box(estimate_cycle_error(&spec, &noise, &opts).failures));
    });
    group.finish();
}

/// Instrumented vs disabled collection on the same `engine_estimate`
/// workload.
///
/// The two benches differ **only** in the collector handed to
/// [`Engine::estimate_obs`]: `disabled_4k_trials` passes
/// `Collector::disabled()` (the branch-only fast path `Engine::estimate`
/// takes), `enabled_4k_trials` passes a live collector recording every
/// counter, histogram and span. CI gates their within-run ratio at ≤2%
/// (`check_bench_regression.py --pair`), pinning the "zero-cost when
/// watched" claim: word-loop tallies are plain integers flushed once per
/// run, so collection must stay in the noise.
fn obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    let spec = transversal_cycle(&toffoli());
    let noise = UniformNoise::new(1.0 / 165.0);
    const TRIALS: u64 = 4_096;
    group.throughput(Throughput::Elements(TRIALS));
    let engine = Engine::compile(spec.circuit(), &noise);
    let opts = McOptions::new(TRIALS)
        .seed(1)
        .threads(1)
        .estimator(Estimator::Plain);
    let off = rft_obs::Collector::disabled();
    group.bench_function("disabled_4k_trials", |b| {
        b.iter(|| black_box(engine.estimate_obs(&spec, &opts, &off).failures));
    });
    let live = rft_obs::Collector::new();
    group.bench_function("enabled_4k_trials", |b| {
        b.iter(|| black_box(engine.estimate_obs(&spec, &opts, &live).failures));
    });
    group.finish();
}

criterion_group!(
    benches,
    engine_compile_overhead,
    engine_estimate_roundtrip,
    obs_overhead
);
criterion_main!(benches);
