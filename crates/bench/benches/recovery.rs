//! Figure 2 recovery-circuit benchmarks: execution and exhaustive sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use rft_core::prelude::*;
use rft_revsim::permutation::Permutation;
use rft_revsim::prelude::*;
use std::hint::black_box;

fn recovery_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(20);
    let circuit = recovery_circuit();
    group.bench_function("ideal_cycle", |b| {
        b.iter(|| {
            let mut s = BitState::from_u64(0b111, TILE_WIDTH);
            circuit.run(&mut s);
            black_box(s.get(DATA_OUT[0]))
        });
    });
    let spec = CycleSpec::new(
        circuit.clone(),
        vec![DATA_IN],
        vec![DATA_OUT],
        Permutation::identity(1),
    );
    group.bench_function("exhaustive_single_fault_sweep", |b| {
        b.iter(|| black_box(spec.sweep_single_faults().violations));
    });
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let cycle = transversal_cycle(&gate);
    group.bench_function("cycle_sweep_33_ops", |b| {
        b.iter(|| black_box(cycle.sweep_single_faults().violations));
    });
    group.finish();
}

criterion_group!(benches, recovery_cycle);
criterion_main!(benches);
