//! Table/figure regeneration benchmarks: the analytic experiments that
//! print the paper's tables (Table 1, Table 2, Eq. 3 series, Figure 1/5
//! checks).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn table_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1_maj_checks", |b| {
        b.iter(|| black_box(rft_analysis::experiments::table1::run().all_ok()));
    });
    group.bench_function("table2_mixed_thresholds", |b| {
        b.iter(|| black_box(rft_analysis::experiments::table2::run().matches_paper()));
    });
    group.bench_function("levelreq_series", |b| {
        b.iter(|| black_box(rft_analysis::experiments::levelreq::run().fitted_gate_exponent));
    });
    group.bench_function("blowup_measurements", |b| {
        b.iter(|| black_box(rft_analysis::experiments::blowup::run().worked_example_ok()));
    });
    group.bench_function("fig2_exhaustive_verification", |b| {
        b.iter(|| black_box(rft_analysis::experiments::fig2::run().all_ok()));
    });
    group.finish();
}

criterion_group!(benches, table_benches);
criterion_main!(benches);
