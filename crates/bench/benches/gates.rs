//! Raw simulator throughput: gate application and circuit execution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rft_revsim::prelude::*;
use std::hint::black_box;

fn gate_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_application");
    group.sample_size(20);
    let gates: [(&str, Gate); 4] = [
        ("not", Gate::Not(w(0))),
        (
            "cnot",
            Gate::Cnot {
                control: w(0),
                target: w(1),
            },
        ),
        (
            "toffoli",
            Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
        ),
        ("maj", Gate::Maj(w(0), w(1), w(2))),
    ];
    for (name, gate) in gates {
        group.throughput(Throughput::Elements(1));
        group.bench_function(name, |b| {
            let mut state = BitState::from_u64(0b101, 3);
            b.iter(|| {
                gate.apply(&mut state);
                black_box(state.get(w(0)))
            });
        });
    }
    group.finish();
}

fn circuit_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_execution");
    group.sample_size(20);
    // A dense 64-wire circuit of 10_000 MAJ gates.
    let n = 64usize;
    let mut circuit = Circuit::with_capacity(n, 10_000);
    for i in 0..10_000u32 {
        let a = (i * 7) % n as u32;
        let b = (a + 1 + (i % 11)) % n as u32;
        let cc = (b + 1 + (i % 5)) % n as u32;
        if a != b && b != cc && a != cc {
            circuit.maj(w(a), w(b), w(cc));
        }
    }
    group.throughput(Throughput::Elements(circuit.len() as u64));
    group.bench_function("ideal_10k_maj", |b| {
        b.iter(|| {
            let mut s = BitState::zeros(n);
            circuit.run(&mut s);
            black_box(s.count_ones())
        });
    });
    group.bench_function("noisy_bernoulli_g1e-3", |b| {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let engine = Engine::compile(&circuit, &UniformNoise::new(1e-3));
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut s = BitState::zeros(n);
            black_box(engine.run_scalar(&mut s, &mut rng).fault_count())
        });
    });
    group.bench_function("noisy_geometric_g1e-3", |b| {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut s = BitState::zeros(n);
            black_box(run_noisy_geometric(&circuit, &mut s, 1e-3, &mut rng).fault_count())
        });
    });
    group.finish();
}

criterion_group!(benches, gate_application, circuit_execution);
criterion_main!(benches);
