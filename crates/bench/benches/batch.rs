//! Scalar vs bit-parallel batch Monte-Carlo throughput, through the
//! unified engine facade.
//!
//! The headline comparison of the batch engine: noisy trials of the
//! Figure-2 recovery cycle (the §2.2 transversal-Toffoli extended
//! rectangle) and of the compiled level-1/level-2 concatenated programs,
//! scalar backend vs 64-lanes-per-word batch backend — selected purely via
//! [`McOptions::backend`], same trial budget. Throughput is reported in
//! trials per second (`Throughput::Elements` = trials per iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rft_analysis::prelude::*;
use rft_core::ftcheck::transversal_cycle;
use rft_revsim::prelude::*;
use std::hint::black_box;

fn toffoli() -> Gate {
    Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    }
}

fn opts(trials: u64, backend: BackendKind) -> McOptions {
    McOptions::new(trials).seed(1).threads(1).backend(backend)
}

/// Figure-2 recovery cycle (27 wires, 27 ops): scalar vs batch backend,
/// single thread, identical trial budget.
fn fig2_cycle_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_fig2_cycle");
    group.sample_size(10);
    let spec = transversal_cycle(&toffoli());
    let noise = UniformNoise::new(1.0 / 165.0);
    const TRIALS: u64 = 4_096;
    group.throughput(Throughput::Elements(TRIALS));
    group.bench_function("scalar_4k_trials", |b| {
        let o = opts(TRIALS, BackendKind::Scalar);
        b.iter(|| black_box(estimate_cycle_error(&spec, &noise, &o).failures));
    });
    group.bench_function("batch_4k_trials", |b| {
        let o = opts(TRIALS, BackendKind::Batch);
        b.iter(|| black_box(estimate_cycle_error(&spec, &noise, &o).failures));
    });
    group.finish();
}

/// Compiled concatenated programs at levels 1 and 2: scalar vs batch.
fn concat_mc_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_concat_mc");
    group.sample_size(10);
    let noise = UniformNoise::new(1.0 / 165.0);
    for level in [1u8, 2] {
        let mc = ConcatMc::new(level, toffoli(), 1);
        let trials: u64 = if level == 1 { 4_096 } else { 512 };
        group.throughput(Throughput::Elements(trials));
        group.bench_with_input(BenchmarkId::new("scalar", level), &level, |b, _| {
            let o = opts(trials, BackendKind::Scalar);
            b.iter(|| black_box(mc.estimate(&noise, &o).failures));
        });
        group.bench_with_input(BenchmarkId::new("batch", level), &level, |b, _| {
            let o = opts(trials, BackendKind::Batch);
            b.iter(|| black_box(mc.estimate(&noise, &o).failures));
        });
    }
    group.finish();
}

/// Raw executor throughput on the recovery cycle, without encode/decode:
/// 64 scalar runs vs one 64-lane batch run (same trial count), on one
/// pre-compiled engine.
fn raw_executor_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_raw_exec");
    group.sample_size(10);
    let spec = transversal_cycle(&toffoli());
    let noise = UniformNoise::new(1.0 / 165.0);
    let engine = Engine::compile(spec.circuit(), &noise);
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    group.throughput(Throughput::Elements(64));
    group.bench_function("scalar_64_runs", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..64 {
                let mut s = BitState::zeros(engine.n_wires());
                acc += engine.run_scalar(&mut s, &mut rng).fault_count();
            }
            black_box(acc)
        });
    });
    group.bench_function("batch_64_lanes", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut batch = BatchState::zeros(engine.n_wires(), 1);
            black_box(engine.run_batch(&mut batch, &mut rng).fault_events)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    fig2_cycle_throughput,
    concat_mc_throughput,
    raw_executor_throughput
);
criterion_main!(benches);
