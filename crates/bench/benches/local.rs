//! §3 local-scheme benchmarks: cycle construction, locality checking,
//! audits, and exhaustive sweeps for 2D and 1D.

use criterion::{criterion_group, criterion_main, Criterion};
use rft_locality::prelude::*;
use rft_revsim::prelude::*;
use std::hint::black_box;

fn local_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("local");
    group.sample_size(10);
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    group.bench_function("build_cycle_2d", |b| {
        b.iter(|| {
            black_box(
                build_cycle_2d(&gate, InterleaveScheme::Perpendicular)
                    .circuit
                    .len(),
            )
        });
    });
    group.bench_function("build_cycle_1d", |b| {
        b.iter(|| black_box(build_cycle_1d(&gate).circuit.len()));
    });
    let cycle2d = build_cycle_2d(&gate, InterleaveScheme::Perpendicular);
    group.bench_function("locality_check_2d", |b| {
        b.iter(|| black_box(cycle2d.lattice.check_circuit(&cycle2d.circuit).is_local()));
    });
    group.bench_function("audit_2d", |b| {
        b.iter(|| black_box(cycle2d.audit().worst()));
    });
    let spec2d = cycle2d.to_cycle_spec(&gate);
    group.bench_function("sweep_2d", |b| {
        b.iter(|| black_box(spec2d.sweep_single_faults().violations));
    });
    let cycle1d = build_cycle_1d(&gate);
    let spec1d = cycle1d.to_cycle_spec(&gate);
    group.bench_function("sweep_1d", |b| {
        b.iter(|| black_box(spec1d.sweep_single_faults().violations));
    });
    let mut wide = Circuit::new(30);
    for i in 0..10u32 {
        wide.toffoli(w(i), w(29 - i), w(15));
    }
    group.bench_function("route_line_10_remote_toffolis", |b| {
        b.iter(|| black_box(route_line(&wide).1.elementary_swaps()));
    });
    group.finish();
}

criterion_group!(benches, local_cycles);
criterion_main!(benches);
