//! Detection-subsystem throughput: what a parity-checked adder costs to
//! synthesize and to estimate, next to its unchecked baseline.
//!
//! `detect_estimate/checked_w8_4k_trials` is the subsystem's headline
//! number — a width-8 checked ripple adder, 4096 Monte-Carlo trials of
//! the undetected-and-wrong judge at `g = 10⁻³` — and
//! `detect_estimate/plain_w8_4k_trials` is the same budget over the bare
//! (Toffoli/CNOT) ripple adder, so the gap between the two *is* the
//! runtime cost of parity protection: the checker rail's CNOT scan plus
//! the wider parity-preserving gate set. `detect_synthesis` measures
//! circuit construction + invariant-checker wrapping alone (no Monte
//! Carlo); it is tiny and allocation-dominated, which makes it the
//! machine-speed yardstick the CI regression gate normalizes by (see
//! `scripts/check_bench_regression.py` and `BENCH_detect.json`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rft_detect::{Adder, AdderKind, AdderTrial, CheckedAdder, TrialMode};
use rft_revsim::engine::{Engine, McOptions};
use rft_revsim::noise::UniformNoise;
use std::hint::black_box;

const TRIALS: u64 = 4096;
const G: f64 = 1e-3;

fn detect_benches(c: &mut Criterion) {
    // Yardstick: synthesis + wrap, no Monte Carlo.
    let mut group = c.benchmark_group("detect_synthesis");
    group.bench_function("checked_cla_w16", |b| {
        b.iter(|| black_box(CheckedAdder::new(AdderKind::Cla, 16).checked.circuit.len()));
    });
    group.bench_function("checked_ripple_w8", |b| {
        b.iter(|| {
            black_box(
                CheckedAdder::new(AdderKind::Ripple, 8)
                    .checked
                    .circuit
                    .len(),
            )
        });
    });
    group.finish();

    let mut group = c.benchmark_group("detect_estimate");
    group.sample_size(20);
    group.throughput(Throughput::Elements(TRIALS));
    let noise = UniformNoise::new(G);

    let ca = CheckedAdder::new(AdderKind::Ripple, 8);
    let engine = Engine::compile(&ca.checked.circuit, &noise);
    let trial = ca.trial(TrialMode::UndetectedWrong);
    let opts = McOptions::new(TRIALS).seed(2005);
    group.bench_function("checked_w8_4k_trials", |b| {
        b.iter(|| black_box(engine.estimate(&trial, &opts).failures));
    });

    let plain = Adder::new(AdderKind::PlainRipple, 8);
    let plain_engine = Engine::compile(&plain.circuit, &noise);
    let plain_trial = AdderTrial::unchecked(&plain, TrialMode::Wrong);
    group.bench_function("plain_w8_4k_trials", |b| {
        b.iter(|| black_box(plain_engine.estimate(&plain_trial, &opts).failures));
    });
    group.finish();
}

criterion_group!(benches, detect_benches);
criterion_main!(benches);
