//! §2.2 Monte-Carlo harness benchmarks (threshold/suppression estimators),
//! through the engine facade with auto backend routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rft_analysis::prelude::*;
use rft_revsim::prelude::*;
use std::hint::black_box;

fn mc_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo");
    group.sample_size(10);
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let opts = McOptions::new(1000).seed(1).threads(4);
    for level in [1u8, 2] {
        let mc = ConcatMc::new(level, gate, 1);
        let noise = UniformNoise::new(1.0 / 165.0);
        group.bench_with_input(
            BenchmarkId::new("level_1k_trials", level),
            &level,
            |b, _| {
                b.iter(|| black_box(mc.estimate(&noise, &opts).failures));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, mc_trials);
criterion_main!(benches);
