//! Served-request throughput: what one quick job costs end to end over
//! loopback HTTP, next to the same job run as a plain library call.
//!
//! `serve_throughput/quick_job_http_roundtrip` is the daemon's headline
//! number — connect, POST, stream, read the final line — and its
//! checked-in BENCH_serve.json baseline documents the ≥100 req/s floor
//! (ns_per_iter ≤ 10⁷). `serve_yardstick/offline_quick_job` runs the
//! identical job through [`run_job`] with no server, socket, or thread
//! budget in the path: it is the normalization yardstick for the CI
//! regression gate (machine-speed factor), and the gap between the two
//! numbers *is* the serving overhead.
//!
//! `serve_concurrent` measures per-request latency under sustained
//! keep-alive load: N client threads each hold one connection and post
//! jobs back to back; every request's wall-clock is recorded and the
//! group reports p50/p99 at 10 and 100 concurrent streams. The vendored
//! criterion shim has no percentile support, so this group measures by
//! hand and emits lines in the same stdout / `CRITERION_JSON` format,
//! which feeds the same CI regression gate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rft_analysis::experiment::CompileCache;
use rft_analysis::job::{run_job, CircuitSpec, JobRecord, JobSpec, NoiseSpec};
use rft_obs::Collector;
use rft_revsim::engine::{BackendKind, Estimator, WordWidth};
use rft_revsim::gate::Gate;
use rft_revsim::wire::w;
use rft_serve::{Server, ServerConfig};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The quick job both benches run: one 4096-trial round at level 1.
fn quick_record(seed: u64) -> JobRecord {
    JobRecord::new(JobSpec {
        circuit: CircuitSpec::Concat {
            level: 1,
            gate: Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
            cycles: 1,
        },
        noise: NoiseSpec::Uniform { g: 1.0 / 165.0 },
        seed,
        estimator: Estimator::Plain,
        backend: BackendKind::Auto,
        width: WordWidth::Auto,
        trials_per_round: 4096,
        max_rounds: 1,
        target_rel_half_width: None,
        deadline_ms: None,
    })
}

fn start_server() -> SocketAddr {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        drain_timeout: Duration::from_secs(1),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    std::thread::spawn(move || server.run().expect("accept loop"));
    addr
}

/// One full HTTP round trip; returns the response length as the
/// black-box value.
fn roundtrip(addr: SocketAddr, body: &str) -> usize {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("response");
    assert!(response.starts_with(b"HTTP/1.1 200"), "job accepted");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.contains("\"kind\":\"final\""),
        "stream carries the final line"
    );
    response.len()
}

fn serve_benches(c: &mut Criterion) {
    // Yardstick first: pure library execution of the identical job.
    let mut group = c.benchmark_group("serve_yardstick");
    group.sample_size(20);
    group.throughput(Throughput::Elements(4096));
    let cache = CompileCache::new();
    let obs = Collector::disabled();
    let record = quick_record(1);
    group.bench_function("offline_quick_job", |b| {
        b.iter(|| {
            black_box(
                run_job(&cache, &obs, &record, 1)
                    .expect("valid job")
                    .result
                    .estimate
                    .trials,
            )
        });
    });
    group.finish();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    let addr = start_server();
    // Warm the server's compile cache so the measured iterations see the
    // steady state (first request pays the one-time compile).
    let body = serde_json::to_string(&quick_record(2)).expect("record JSON");
    roundtrip(addr, &body);
    group.bench_function("quick_job_http_roundtrip", |b| {
        b.iter(|| black_box(roundtrip(addr, &body)));
    });
    group.finish();

    concurrent_benches();
}

/// Reads one framed response off a keep-alive connection: status line,
/// headers, then the chunked body to the zero chunk. Returns the body.
fn read_framed(reader: &mut BufReader<TcpStream>) -> Vec<u8> {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.starts_with("HTTP/1.1 200"), "job accepted: {line}");
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        if line == "\r\n" {
            break;
        }
    }
    let mut body = Vec::new();
    loop {
        line.clear();
        reader.read_line(&mut line).expect("chunk size");
        let size = usize::from_str_radix(line.trim(), 16).expect("hex chunk size");
        let mut chunk = vec![0u8; size + 2];
        reader.read_exact(&mut chunk).expect("chunk payload");
        if size == 0 {
            return body;
        }
        body.extend_from_slice(&chunk[..size]);
    }
}

/// One client stream: a single keep-alive connection posting `requests`
/// jobs back to back, recording each request's wall-clock nanoseconds.
fn stream_latencies(
    addr: SocketAddr,
    body: Arc<String>,
    requests: usize,
    start: Arc<Barrier>,
) -> Vec<u64> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone for writer");
    let mut reader = BufReader::new(stream);
    let request = format!(
        "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    start.wait();
    let mut latencies = Vec::with_capacity(requests);
    for _ in 0..requests {
        let begun = Instant::now();
        writer.write_all(request.as_bytes()).expect("request");
        let payload = read_framed(&mut reader);
        assert!(
            payload.windows(14).any(|w| w == b"\"kind\":\"final\""),
            "stream carries the final line"
        );
        latencies.push(begun.elapsed().as_nanos() as u64);
    }
    latencies
}

/// Runs `streams` concurrent keep-alive clients and returns the pooled
/// per-request (p50, p99) in nanoseconds.
fn concurrent_load(addr: SocketAddr, body: &str, streams: usize, requests: usize) -> (f64, f64) {
    let body = Arc::new(body.to_string());
    let start = Arc::new(Barrier::new(streams));
    let handles: Vec<_> = (0..streams)
        .map(|_| {
            let (body, start) = (Arc::clone(&body), Arc::clone(&start));
            std::thread::spawn(move || stream_latencies(addr, body, requests, start))
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client stream"))
        .collect();
    all.sort_unstable();
    let pick = |q: f64| all[((all.len() - 1) as f64 * q) as usize] as f64;
    (pick(0.50), pick(0.99))
}

/// Emits one result in the vendored criterion shim's stdout and
/// `CRITERION_JSON` formats so the CI regression gate ingests it like
/// any other bench.
fn report(group: &str, bench: &str, ns: f64, samples: usize) {
    println!(
        "bench {:<48} {ns:>14.1} ns/iter ({samples} iters)",
        format!("{group}/{bench}")
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        use std::io::Write as _;
        let line = format!("{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"ns_per_iter\":{ns:.2},\"throughput_elems\":1}}\n");
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// The `serve_concurrent` group: p50/p99 request latency at 10 and 100
/// keep-alive streams against a pool sized to hold them all (a
/// keep-alive connection pins its worker, so `workers` must cover the
/// stream count; job concurrency is still throttled by the shared
/// trial-thread budget, which is what the tail latencies measure).
fn concurrent_benches() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        workers: 128,
        accept_queue: 128,
        max_jobs: 128,
        drain_timeout: Duration::from_secs(1),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    std::thread::spawn(move || server.run().expect("accept loop"));
    let body = serde_json::to_string(&quick_record(3)).expect("record JSON");
    // Warm the compile cache so measured requests see the steady state.
    roundtrip(addr, &body);
    for (streams, requests) in [(10, 40), (100, 10)] {
        let (p50, p99) = concurrent_load(addr, &body, streams, requests);
        report(
            "serve_concurrent",
            &format!("p50_{streams}_streams"),
            p50,
            streams * requests,
        );
        report(
            "serve_concurrent",
            &format!("p99_{streams}_streams"),
            p99,
            streams * requests,
        );
    }
}

criterion_group!(benches, serve_benches);
criterion_main!(benches);
