//! Served-request throughput: what one quick job costs end to end over
//! loopback HTTP, next to the same job run as a plain library call.
//!
//! `serve_throughput/quick_job_http_roundtrip` is the daemon's headline
//! number — connect, POST, stream, read the final line — and its
//! checked-in BENCH_serve.json baseline documents the ≥100 req/s floor
//! (ns_per_iter ≤ 10⁷). `serve_yardstick/offline_quick_job` runs the
//! identical job through [`run_job`] with no server, socket, or thread
//! budget in the path: it is the normalization yardstick for the CI
//! regression gate (machine-speed factor), and the gap between the two
//! numbers *is* the serving overhead.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rft_analysis::experiment::CompileCache;
use rft_analysis::job::{run_job, CircuitSpec, JobRecord, JobSpec, NoiseSpec};
use rft_obs::Collector;
use rft_revsim::engine::{BackendKind, Estimator, WordWidth};
use rft_revsim::gate::Gate;
use rft_revsim::wire::w;
use rft_serve::{Server, ServerConfig};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// The quick job both benches run: one 4096-trial round at level 1.
fn quick_record(seed: u64) -> JobRecord {
    JobRecord::new(JobSpec {
        circuit: CircuitSpec::Concat {
            level: 1,
            gate: Gate::Toffoli {
                controls: [w(0), w(1)],
                target: w(2),
            },
            cycles: 1,
        },
        noise: NoiseSpec::Uniform { g: 1.0 / 165.0 },
        seed,
        estimator: Estimator::Plain,
        backend: BackendKind::Auto,
        width: WordWidth::Auto,
        trials_per_round: 4096,
        max_rounds: 1,
        target_rel_half_width: None,
    })
}

fn start_server() -> SocketAddr {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        threads_per_job: 1,
        drain_timeout: Duration::from_secs(1),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    std::thread::spawn(move || server.run().expect("accept loop"));
    addr
}

/// One full HTTP round trip; returns the response length as the
/// black-box value.
fn roundtrip(addr: SocketAddr, body: &str) -> usize {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("response");
    assert!(response.starts_with(b"HTTP/1.1 200"), "job accepted");
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.contains("\"kind\":\"final\""),
        "stream carries the final line"
    );
    response.len()
}

fn serve_benches(c: &mut Criterion) {
    // Yardstick first: pure library execution of the identical job.
    let mut group = c.benchmark_group("serve_yardstick");
    group.sample_size(20);
    group.throughput(Throughput::Elements(4096));
    let cache = CompileCache::new();
    let obs = Collector::disabled();
    let record = quick_record(1);
    group.bench_function("offline_quick_job", |b| {
        b.iter(|| {
            black_box(
                run_job(&cache, &obs, &record, 1)
                    .expect("valid job")
                    .result
                    .estimate
                    .trials,
            )
        });
    });
    group.finish();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    let addr = start_server();
    // Warm the server's compile cache so the measured iterations see the
    // steady state (first request pays the one-time compile).
    let body = serde_json::to_string(&quick_record(2)).expect("record JSON");
    roundtrip(addr, &body);
    group.bench_function("quick_job_http_roundtrip", |b| {
        b.iter(|| black_box(roundtrip(addr, &body)));
    });
    group.finish();
}

criterion_group!(benches, serve_benches);
criterion_main!(benches);
