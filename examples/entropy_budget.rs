//! How much heat does fault-tolerant reversible computing dissipate? (§4)
//!
//! Reversible logic can in principle compute for free, but *noisy*
//! reversible logic must eject entropy through ancilla resets, and
//! Landauer prices every ejected bit at `k_B·T·ln 2`. This example budgets
//! a realistic module: pick a gate error rate and a module size, find the
//! concatenation level, and compare the heat against simply building the
//! machine from irreversible gates (3/2 bits per NAND, footnote 4).
//!
//! Run with: `cargo run --release --example entropy_budget`

use reversible_ft::analysis::prelude::*;
use reversible_ft::core::entropy::{
    hl_lower, hl_upper, landauer_heat_joules, max_level_constant_entropy, nand_via_maj_inv,
};
use reversible_ft::core::prelude::*;
use reversible_ft::revsim::prelude::*;

fn main() {
    let g = 1e-3; // physical gate error rate
    let module_gates = 1e6; // logical gates we want to run reliably
    let temp = 300.0; // kelvin
    let budget = GateBudget::NONLOCAL_WITH_INIT;

    println!("design point: g = {g}, module of {module_gates:.0e} logical gates, T = {temp} K\n");

    // ── 1. How deep must we concatenate? (Eq. 3) ─────────────────────────
    let overhead = budget
        .module_overhead(g, module_gates)
        .expect("valid rate")
        .expect("g is below threshold");
    println!(
        "required level L = {} → ×{:.0} gates, ×{:.0} bits, failure bound {:.1e}",
        overhead.level, overhead.gate_factor, overhead.size_factor, overhead.achieved_error
    );

    // ── 2. Entropy per logical gate: bounds and measurement ─────────────
    let level = overhead.level.max(1);
    let lo = hl_lower(g, 8.0, level);
    let hi = hl_upper(g, 27.0, level);
    println!("\nentropy per FT gate at L = {level}: between {lo:.4} and {hi:.2} bits (§4 bounds)");

    // Measure it on the compiled level-1 cycle (difference of 1- and
    // 3-cycle programs isolates the steady-state per-cycle entropy).
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let program_of = |cycles: usize| {
        let mut b = FtBuilder::new(1, 3);
        for _ in 0..cycles {
            b.apply(&gate);
        }
        b.finish()
    };
    let short = program_of(1);
    let long = program_of(3);
    let noise = UniformNoise::new(g);
    let h_short = measure_reset_entropy(
        short.circuit(),
        &short.encode(&BitState::zeros(3)),
        &noise,
        30_000,
        42,
    )
    .bits_per_run;
    let h_long = measure_reset_entropy(
        long.circuit(),
        &long.encode(&BitState::zeros(3)),
        &noise,
        30_000,
        43,
    )
    .bits_per_run;
    let measured = (h_long - h_short) / 2.0;
    println!("measured at L = 1: {measured:.4} bits per logical gate");

    // ── 3. The heat bill (Landauer) ──────────────────────────────────────
    let bits_total = measured * module_gates;
    println!(
        "\nrunning the whole module once dissipates ≥ {:.3e} J at {temp} K",
        landauer_heat_joules(bits_total, temp)
    );
    let irreversible = nand_via_maj_inv().reset_joint_entropy; // 3/2 bits
    println!(
        "an irreversible machine (NAND at {irreversible} bits/gate) would dissipate {:.3e} J",
        landauer_heat_joules(irreversible * module_gates, temp)
    );
    if measured < irreversible {
        println!(
            "→ reversible wins by ×{:.1} at this design point",
            irreversible / measured.max(1e-12)
        );
    } else {
        println!("→ reversible has lost its advantage at this error rate");
    }

    // ── 4. Where the advantage dies (§4) ─────────────────────────────────
    println!("\nentropy cap: L ≤ log(1/g)/log(3E) + 1:");
    for g_probe in [1e-2, 1e-3, 1e-4, 1e-6] {
        println!(
            "  g = {g_probe:<8} → L ≤ {:.2}",
            max_level_constant_entropy(g_probe, 8.0)
        );
    }
    println!("(the paper's example: g = 10⁻², E = 11 ⇒ L ≤ 2.3)");
}
