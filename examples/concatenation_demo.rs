//! Concatenation in action (§2.1–2.3): the same logical Toffoli compiled
//! at levels 0, 1 and 2, executed under increasing noise. Below threshold
//! each level crushes the error rate (doubly-exponentially, Eq. 2); above
//! it, encoding makes things worse — the defining signature of a
//! fault-tolerance threshold.
//!
//! Run with: `cargo run --release --example concatenation_demo`

use reversible_ft::analysis::prelude::*;
use reversible_ft::core::prelude::*;
use reversible_ft::revsim::prelude::*;

fn main() {
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let budget = GateBudget::NONLOCAL_WITH_INIT;
    let rho = budget.threshold();
    let cycles = 3usize;
    let trials = 40_000u64;

    println!("logical Toffoli, {cycles} consecutive FT cycles per trial, {trials} trials/point");
    println!("analytic threshold (lower bound): ρ = 1/{:.0}\n", 1.0 / rho);

    // Show the compiled sizes first (the §2.3 blow-up).
    for level in 0..=2u8 {
        let cost = measure_gate_cost(level);
        println!(
            "level {level}: {} ops per logical gate, {} wires per logical bit, depth {}",
            cost.ops, cost.wires_per_bit, cost.depth
        );
    }

    println!("\n  g/ρ     level 0     level 1     level 2     Eq.2 bound (L=2)");
    for mult in [0.1, 0.25, 0.5, 1.0, 2.0, 8.0, 16.0] {
        let g = rho * mult;
        let noise = UniformNoise::new(g);
        let mut rates = Vec::new();
        for level in 0..=2u8 {
            let mc = ConcatMc::new(level, gate, cycles);
            let t = if level == 2 { trials / 4 } else { trials };
            // One typed options value per point: the engine facade routes
            // to the batch backend automatically at these budgets.
            let opts = McOptions::new(t).seed(7).salt(g.to_bits()).threads(8);
            let (est, per_cycle) = mc.estimate_per_cycle(&noise, &opts);
            let _ = est;
            rates.push(per_cycle);
        }
        let bound = budget.error_at_level(g, 2).expect("valid rate").min(1.0);
        println!(
            "  {:<7.2} {:<11.6} {:<11.6} {:<11.6} {:.2e}",
            mult, rates[0], rates[1], rates[2], bound
        );
    }

    println!(
        "\nreading the table: below ρ each level multiplies reliability; around 8–16ρ the\n\
         ordering inverts — the measured pseudo-threshold sits a few times above the\n\
         conservative analytic bound, exactly as the paper anticipates (\"the circuits …\n\
         represent a lower bound on the threshold\")."
    );
}
