//! A reversible ripple-carry adder (Cuccaro-style, built from the paper's
//! MAJ gate — see footnote 2: "variants of the MAJ gate have found
//! application in … reversible addition"), run bare and fault-tolerantly.
//!
//! The adder computes `(a, b) → (a, a+b)` in place using MAJ to ripple the
//! carry up and its inverse block (UMA) to ripple it back down. We verify
//! it exhaustively, then compare its error rate under noisy gates with and
//! without the level-1 fault-tolerant encoding of §2.
//!
//! Run with: `cargo run --release --example fault_tolerant_adder`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reversible_ft::analysis::prelude::*;
use reversible_ft::core::prelude::*;
use reversible_ft::revsim::prelude::*;

/// Wire layout for an `n`-bit adder: `a_i` at `2i`, `b_i` at `2i+1`,
/// carry ancilla at `2n`, carry-out `z` at `2n+1`.
struct Adder {
    n: usize,
    circuit: Circuit,
}

impl Adder {
    fn new(n: usize) -> Self {
        let wires = 2 * n + 2;
        let a = |i: usize| w(2 * i as u32);
        let b = |i: usize| w(2 * i as u32 + 1);
        let c0 = w(2 * n as u32);
        let z = w(2 * n as u32 + 1);
        let mut circuit = Circuit::new(wires);
        // MAJ ripple: Maj(a_i, b_i, carry_in) leaves carry_{i+1} on a_i.
        let carry_in = |i: usize| if i == 0 { c0 } else { a(i - 1) };
        for i in 0..n {
            circuit.maj(a(i), b(i), carry_in(i));
        }
        // Copy the final carry out.
        circuit.cnot(a(n - 1), z);
        // UMA ripple-down: restore a_i and carries, leave sums on b_i.
        for i in (0..n).rev() {
            circuit.toffoli(b(i), carry_in(i), a(i));
            circuit.cnot(a(i), carry_in(i));
            circuit.cnot(carry_in(i), b(i));
        }
        Adder { n, circuit }
    }

    fn encode_input(&self, a: u64, b: u64) -> BitState {
        let mut s = BitState::zeros(self.circuit.n_wires());
        for i in 0..self.n {
            s.set(w(2 * i as u32), (a >> i) & 1 == 1);
            s.set(w(2 * i as u32 + 1), (b >> i) & 1 == 1);
        }
        s
    }

    /// Reads `(a, sum_with_carry)` from an output state.
    fn decode_output(&self, s: &BitState) -> (u64, u64) {
        let mut a = 0u64;
        let mut sum = 0u64;
        for i in 0..self.n {
            a |= (s.get(w(2 * i as u32)) as u64) << i;
            sum |= (s.get(w(2 * i as u32 + 1)) as u64) << i;
        }
        sum |= (s.get(w(2 * self.n as u32 + 1)) as u64) << self.n;
        (a, sum)
    }
}

fn main() {
    // ── 1. Exhaustive functional verification ───────────────────────────
    let adder = Adder::new(3);
    for a in 0..8u64 {
        for b in 0..8u64 {
            let mut s = adder.encode_input(a, b);
            adder.circuit.run(&mut s);
            let (a_out, sum) = adder.decode_output(&s);
            assert_eq!(a_out, a, "a must be restored");
            assert_eq!(sum, a + b, "{a} + {b}");
        }
    }
    println!("3-bit MAJ/UMA adder verified exhaustively: all 64 sums correct");
    println!(
        "adder stats: {} ({} wires, depth {})",
        adder.circuit.stats(),
        adder.circuit.n_wires(),
        adder.circuit.depth()
    );

    // ── 2. Bare vs fault-tolerant execution under noise ─────────────────
    let adder2 = Adder::new(2);
    let program = FtBuilder::compile(1, &adder2.circuit).expect("gate-only circuit");
    println!(
        "\nlevel-1 FT compile: {} logical ops → {} physical ops on {} wires",
        adder2.circuit.len(),
        program.circuit().len(),
        program.n_physical()
    );

    let trials = 20_000u64;
    let mut rng = SmallRng::seed_from_u64(2005);
    println!("\n  g        bare adder   FT adder (level 1)");
    for g in [1.0 / 2000.0, 1.0 / 500.0, 1.0 / 165.0] {
        let noise = UniformNoise::new(g);
        // Compile each circuit against the noise model once, run 20k times.
        let bare_engine = Engine::compile(&adder2.circuit, &noise);
        let ft_engine = Engine::compile(program.circuit(), &noise);
        let mut bare_fail = 0u64;
        let mut ft_fail = 0u64;
        for _ in 0..trials {
            let a = rng.random_range(0..4u64);
            let b = rng.random_range(0..4u64);
            // Bare run.
            let mut s = adder2.encode_input(a, b);
            bare_engine.run_scalar(&mut s, &mut rng);
            if adder2.decode_output(&s).1 != a + b {
                bare_fail += 1;
            }
            // Fault-tolerant run.
            let logical_in = adder2.encode_input(a, b);
            let mut phys = program.encode(&logical_in);
            ft_engine.run_scalar(&mut phys, &mut rng);
            if adder2.decode_output(&program.decode(&phys)).1 != a + b {
                ft_fail += 1;
            }
        }
        let bare = ErrorEstimate::from_counts(bare_fail, trials);
        let ft = ErrorEstimate::from_counts(ft_fail, trials);
        println!(
            "  {g:<8.5} {:<12.5} {:<12.5}  ({}x)",
            bare.rate,
            ft.rate,
            if ft.rate > 0.0 {
                format!("{:.1}", bare.rate / ft.rate)
            } else {
                "∞".into()
            }
        );
    }
    println!("\nbelow threshold, the encoded adder beats the bare one — Section 2 at work.");
}
