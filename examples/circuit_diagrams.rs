//! Render the paper's figures in its own gate-array notation (§2: "space
//! is on the y-axis and time is on the x-axis").
//!
//! Run with: `cargo run --release --example circuit_diagrams`

use reversible_ft::core::prelude::*;
use reversible_ft::core::synth::Synthesizer;
use reversible_ft::locality::prelude::*;
use reversible_ft::revsim::prelude::*;

fn main() {
    // ── Figure 1: MAJ from two CNOTs and a Toffoli ───────────────────────
    let mut fig1 = Circuit::new(3);
    fig1.cnot(w(0), w(1))
        .cnot(w(0), w(2))
        .toffoli(w(1), w(2), w(0));
    println!(
        "Figure 1 — the reversible majority gate:\n{}",
        render(&fig1)
    );

    // ── Figure 2: the error-recovery circuit ─────────────────────────────
    println!("Figure 2 — fault-tolerant error recovery (outputs on q0,q3,q6):");
    println!("{}", render(&recovery_circuit()));

    // ── Figure 5: SWAP3 ──────────────────────────────────────────────────
    let mut fig5 = Circuit::new(3);
    fig5.swap(w(0), w(1)).swap(w(1), w(2));
    println!("Figure 5 — SWAP3 as two SWAPs:\n{}", render(&fig5));

    // ── Figure 7: the one-dimensional local recovery ─────────────────────
    let (fig7, _, _) = build_recovery_1d();
    println!("Figure 7 — 1D local recovery (wire order q0,q3,q6,q1,q4,q7,q2,q5,q8):");
    println!("{}", render(&fig7));

    // ── Bonus: shortest synthesized circuits ─────────────────────────────
    let synth = Synthesizer::new(&[OpKind::Not, OpKind::Cnot, OpKind::Toffoli]);
    println!(
        "synthesizer over {{NOT, CNOT, Toffoli}}: {} of 40320 functions reachable",
        synth.reachable()
    );
    let maj = synth
        .circuit_for(&reversible_ft::core::maj::maj_permutation())
        .expect("universal set");
    println!(
        "\nshortest MAJ circuit found by BFS ({} gates — Figure 1 is optimal):\n{}",
        maj.len(),
        render(&maj)
    );
    let swap = {
        let mut c = Circuit::new(3);
        c.swap(w(0), w(1));
        reversible_ft::revsim::permutation::Permutation::of_circuit(&c).expect("3 wires")
    };
    let swap_synth = synth.circuit_for(&swap).expect("universal set");
    println!(
        "shortest SWAP from CNOTs ({} gates — the classic 3-CNOT trick):\n{}",
        swap_synth.len(),
        render(&swap_synth)
    );
}
