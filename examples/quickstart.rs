//! Quickstart: encode a bit in the 3-bit repetition code, corrupt it, and
//! recover it with the paper's fault-tolerant error-recovery circuit
//! (Figure 2), measure its logical error rate through the unified engine,
//! then look at the threshold numbers that govern when this is worth
//! doing.
//!
//! Run with: `cargo run --release --example quickstart`

use reversible_ft::analysis::prelude::*;
use reversible_ft::core::prelude::*;
use reversible_ft::revsim::prelude::*;

fn main() {
    // ── 1. The reversible majority gate (Table 1) ───────────────────────
    let verification = verify_maj();
    println!("MAJ reproduces Table 1: {}", verification.matches_table_1);
    println!(
        "MAJ = 2 CNOT + Toffoli (Figure 1): {}",
        verification.decomposition_matches
    );

    // ── 2. Encode one logical bit, inject an error, recover ─────────────
    // The recovery tile is 9 wires: codeword on q0,q1,q2, ancillas q3..q8.
    let mut state = BitState::zeros(TILE_WIDTH);
    for q in DATA_IN {
        state.set(q, true); // logical 1 → codeword 111
    }
    state.flip(DATA_IN[1]); // a physical bit-flip error
    println!("\ncorrupted codeword: {state}");

    recovery_circuit().run(&mut state);
    let recovered: Vec<bool> = DATA_OUT.iter().map(|&q| state.get(q)).collect();
    println!("after recovery, output codeword (q0,q3,q6): {recovered:?}");
    assert_eq!(
        recovered,
        vec![true, true, true],
        "the error must be corrected"
    );

    // ── 3. Why it is fault tolerant: exhaustive single-fault sweep ──────
    let spec = CycleSpec::new(
        recovery_circuit(),
        vec![DATA_IN],
        vec![DATA_OUT],
        reversible_ft::revsim::permutation::Permutation::identity(1),
    );
    let sweep = spec.sweep_single_faults();
    println!(
        "\nexhaustive sweep: {} fault plans × 2 inputs, worst output error = {} bit(s), \
         fault tolerant: {}",
        sweep.plans,
        sweep.max_codeword_error,
        sweep.is_fault_tolerant()
    );

    // ── 4. Measure it: compile-once/run-many through the Engine ─────────
    // `estimate_cycle_error` compiles the cycle + noise into an Engine and
    // runs Monte-Carlo trials through the auto-selected backend (batch
    // above 256 trials). `target_rel_error` stops as soon as the estimate
    // is good to ~10% instead of burning the whole budget.
    let g = 1.0 / 100.0;
    let opts = McOptions::new(500_000)
        .seed(2005)
        .threads(4)
        .target_rel_error(0.1);
    let est = estimate_cycle_error(&spec, &UniformNoise::new(g), &opts);
    println!(
        "\nMonte-Carlo at g = 1/100: logical error {:.2e} (95% CI {:.2e}..{:.2e}, \
         stopped after {} of 500000 trials)",
        est.rate, est.low, est.high, est.trials
    );
    println!(
        "one faulty recovery in isolation would cost ≈ g·G = {:.2e}; the cycle does better",
        g * 11.0
    );

    // ── 5. The thresholds this buys (§2.2) ──────────────────────────────
    for (name, budget) in [
        ("G = 9 (perfect init)", GateBudget::NONLOCAL_NO_INIT),
        ("G = 11 (init counted)", GateBudget::NONLOCAL_WITH_INIT),
    ] {
        println!(
            "{name}: threshold ρ = 1/{:.0}; at g = ρ/10 a gate at level 2 fails with p ≤ {:.2e}",
            1.0 / budget.threshold(),
            budget
                .error_at_level(budget.threshold() / 10.0, 2)
                .expect("valid rate"),
        );
    }
}
