//! Nano-scale architectures only talk to their neighbours (§3): this
//! example places the fault-tolerant scheme on a 1D chain, reproduces the
//! Figure 6/7 swap schedules, checks every gate is nearest-neighbour, and
//! compares the thresholds the locality restriction costs.
//!
//! Run with: `cargo run --release --example nearest_neighbor_1d`

use reversible_ft::core::prelude::*;
use reversible_ft::locality::prelude::*;
use reversible_ft::revsim::prelude::*;

fn main() {
    // ── 1. Figure 7: local error recovery on a 9-cell line ──────────────
    let (recovery, line, tile) = build_recovery_1d();
    let report = line.check_circuit(&recovery);
    println!(
        "Figure 7 recovery: {} ops ({} MAJ-family, {} SWAP3, {} SWAP, {} init) — local: {}",
        recovery.len(),
        recovery.stats().maj_family(),
        recovery.stats().count(OpKind::Swap3),
        recovery.stats().count(OpKind::Swap),
        recovery.stats().init_ops(),
        report.is_local()
    );

    // It still corrects any single bit error.
    for flip in 0..3 {
        let mut s = BitState::zeros(9);
        for q in tile.data() {
            s.set(q, true);
        }
        s.flip(tile.data()[flip]);
        recovery.run(&mut s);
        assert!(
            tile.data().iter().all(|&q| s.get(q)),
            "flip {flip} corrected"
        );
    }
    println!("single-bit errors corrected on the line: yes");

    // ── 2. Figure 6: interleaving three codewords ────────────────────────
    let tiles = [Tile1D::new(0), Tile1D::new(9), Tile1D::new(18)];
    let mut interleave = Circuit::new(27);
    let (cost, triples) = interleave_1d(&mut interleave, &tiles);
    println!(
        "\nFigure 6 interleave: swaps per move {:?} (paper: 8,7,6,10,8,6), total {} (paper: 45)",
        cost.per_move, cost.total_swaps
    );
    println!("transversal triples after interleave: {triples:?}");
    assert!(line_of(27).check_circuit(&interleave).is_local());

    // ── 3. A full 1D cycle and its cost ──────────────────────────────────
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    let cycle = build_cycle_1d(&gate);
    let audit = cycle.audit();
    println!(
        "\nfull 1D Toffoli cycle: {} ops, worst codeword touched by {} ops (paper G = 40)",
        cycle.circuit.len(),
        audit.ops_touching.iter().max().unwrap()
    );

    // ── 4. What locality costs: thresholds (§3.1, §3.2, §3.3) ───────────
    println!("\nthresholds (analytic, init counted):");
    for (name, budget) in [
        ("non-local", GateBudget::NONLOCAL_WITH_INIT),
        ("2D lattice", GateBudget::LOCAL_2D_WITH_INIT),
        ("1D lattice", GateBudget::LOCAL_1D_WITH_INIT),
    ] {
        println!(
            "  {name:<10} G = {:>2} → ρ = 1/{:.0}",
            budget.ops(),
            1.0 / budget.threshold()
        );
    }
    println!("\nmixed 1D/2D (§3.3): a lattice only 27 bits wide already has");
    let rho2 = GateBudget::LOCAL_2D_NO_INIT.threshold();
    let rho1 = GateBudget::LOCAL_1D_NO_INIT.threshold();
    let rho3 = mixed_threshold(rho1, rho2, 3);
    println!(
        "  ρ(k=3)/ρ₂ = {:.2} of the full 2D threshold (paper: 0.77)",
        rho3 / rho2
    );

    // ── 5. Routing arbitrary circuits onto the line ──────────────────────
    let mut remote = Circuit::new(12);
    remote
        .toffoli(w(0), w(11), w(5))
        .maj(w(2), w(9), w(6))
        .cnot(w(1), w(10));
    let (routed, stats) = route_line(&remote);
    println!(
        "\ngeneric line router: {} remote ops → {} local ops ({} extra elementary swaps)",
        remote.len(),
        routed.len(),
        stats.elementary_swaps()
    );
    assert!(line_of(12).check_circuit(&routed).is_local());
    println!("routed circuit is fully nearest-neighbour: yes");
}

fn line_of(n: usize) -> Lattice {
    Lattice::line(n)
}
