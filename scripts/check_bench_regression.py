#!/usr/bin/env python3
"""Fail CI when a benchmark group regresses against its checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json \
        --group engine_estimate [--group fused_vs_raw ...] \
        [--max-ratio 1.25] [--normalize-group engine_compile]

Both files are JSON-lines as written by the vendored criterion shim's
``CRITERION_JSON`` hook: one object per line with at least ``group``,
``bench`` and ``ns_per_iter`` fields (lines without these — e.g. the
rare-event summary lines — are ignored).

Raw nanoseconds are not comparable across machines, so when
``--normalize-group`` is given the script first estimates the machine
speed factor as the **median** fresh/baseline ratio over that group's
benches (compile-only benches make a good yardstick: tiny, allocation
light, insensitive to the changes under test). Each gated bench's ratio
is divided by that factor before comparison, so "25% regression" means
25% relative to what this machine would have scored on the baseline
commit.
"""

import argparse
import json
import statistics
import sys


def load(path):
    """Parse a JSON-lines bench file into {(group, bench): ns_per_iter}."""
    out = {}
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                group = obj.get("group")
                bench = obj.get("bench")
                ns = obj.get("ns_per_iter")
                if group is None or bench is None or not isinstance(ns, (int, float)):
                    continue
                out[(group, bench)] = float(ns)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--group",
        required=True,
        action="append",
        help="bench group to gate on (repeatable)",
    )
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=1.25,
        help="fail if normalized fresh/baseline exceeds this (default 1.25)",
    )
    ap.add_argument(
        "--normalize-group",
        default=None,
        help="group whose median fresh/baseline ratio estimates machine speed",
    )
    args = ap.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    factor = 1.0
    if args.normalize_group:
        ratios = [
            fresh[k] / baseline[k]
            for k in baseline
            if k[0] == args.normalize_group and k in fresh and baseline[k] > 0
        ]
        if ratios:
            factor = statistics.median(ratios)
            print(
                f"machine speed factor from {args.normalize_group!r}: "
                f"{factor:.3f} (median of {len(ratios)} benches)"
            )
        else:
            print(
                f"warning: no common benches in normalize group "
                f"{args.normalize_group!r}; comparing raw nanoseconds",
                file=sys.stderr,
            )

    failed = False
    gated = [k for k in baseline if k[0] in args.group]
    for group in args.group:
        if not any(k[0] == group for k in gated):
            sys.exit(f"error: baseline has no benches in group {group!r}")

    for key in sorted(gated):
        if key not in fresh:
            print(f"warning: {key[0]}/{key[1]} missing from fresh run", file=sys.stderr)
            continue
        ratio = fresh[key] / baseline[key] / factor
        status = "OK " if ratio <= args.max_ratio else "FAIL"
        print(
            f"{status} {key[0]}/{key[1]}: baseline {baseline[key]:.1f} ns, "
            f"fresh {fresh[key]:.1f} ns, normalized ratio {ratio:.3f} "
            f"(limit {args.max_ratio})"
        )
        if ratio > args.max_ratio:
            failed = True

    if failed:
        groups = ", ".join(args.group)
        sys.exit(f"bench regression: groups [{groups}] exceeded {args.max_ratio}x")
    print("no regression detected")


if __name__ == "__main__":
    main()
