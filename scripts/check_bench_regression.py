#!/usr/bin/env python3
"""Fail CI when a benchmark group regresses against its checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json \
        --group engine_estimate [--group fused_vs_raw ...] \
        [--max-ratio 1.25] [--normalize-group engine_compile] \
        [--pair obs_overhead:enabled_4k_trials:disabled_4k_trials:1.02 ...]

Both files are JSON-lines as written by the vendored criterion shim's
``CRITERION_JSON`` hook: one object per line with at least ``group``,
``bench`` and ``ns_per_iter`` fields (lines without these — e.g. the
rare-event summary lines — are ignored).

Raw nanoseconds are not comparable across machines, so when
``--normalize-group`` is given the script first estimates the machine
speed factor as the **median** fresh/baseline ratio over that group's
benches (compile-only benches make a good yardstick: tiny, allocation
light, insensitive to the changes under test). Each gated bench's ratio
is divided by that factor before comparison, so "25% regression" means
25% relative to what this machine would have scored on the baseline
commit.

``--pair GROUP:NUMERATOR:DENOMINATOR:MAX_RATIO`` gates a ratio taken
**within the fresh file alone** — two benches of the same group measured
back-to-back on the same machine, so no baseline or normalization is
involved. This is how the ≤2% instrumentation-overhead invariant is
enforced: ``obs_overhead/enabled_4k_trials`` may cost at most 1.02× of
``obs_overhead/disabled_4k_trials``. Repeatable; may be combined with
``--group`` gating or used on its own.

On failure the exit message names every offending group/bench with its
baseline, current, and delta percentage, so the offender is identifiable
from the last line of a CI log alone.
"""

import argparse
import json
import statistics
import sys


def load(path):
    """Parse a JSON-lines bench file into {(group, bench): ns_per_iter}."""
    out = {}
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                group = obj.get("group")
                bench = obj.get("bench")
                ns = obj.get("ns_per_iter")
                if group is None or bench is None or not isinstance(ns, (int, float)):
                    continue
                out[(group, bench)] = float(ns)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument(
        "--group",
        action="append",
        default=[],
        help="bench group to gate on against the baseline (repeatable)",
    )
    ap.add_argument(
        "--pair",
        action="append",
        default=[],
        metavar="GROUP:NUM:DEN:MAX_RATIO",
        help="gate fresh[GROUP/NUM] / fresh[GROUP/DEN] <= MAX_RATIO, "
        "measured within the fresh file only (repeatable)",
    )
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=1.25,
        help="fail if normalized fresh/baseline exceeds this (default 1.25)",
    )
    ap.add_argument(
        "--normalize-group",
        default=None,
        help="group whose median fresh/baseline ratio estimates machine speed",
    )
    args = ap.parse_args()
    if not args.group and not args.pair:
        ap.error("nothing to gate: pass --group and/or --pair")

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    factor = 1.0
    if args.normalize_group:
        ratios = [
            fresh[k] / baseline[k]
            for k in baseline
            if k[0] == args.normalize_group and k in fresh and baseline[k] > 0
        ]
        if ratios:
            factor = statistics.median(ratios)
            print(
                f"machine speed factor from {args.normalize_group!r}: "
                f"{factor:.3f} (median of {len(ratios)} benches)"
            )
        else:
            print(
                f"warning: no common benches in normalize group "
                f"{args.normalize_group!r}; comparing raw nanoseconds",
                file=sys.stderr,
            )

    # Each failure is recorded as a full sentence so the final exit
    # message — often the only line a CI summary shows — names the
    # offending group/bench with baseline, current, and delta.
    failures = []
    gated = [k for k in baseline if k[0] in args.group]
    for group in args.group:
        if not any(k[0] == group for k in gated):
            sys.exit(f"error: baseline has no benches in group {group!r}")

    for key in sorted(gated):
        if key not in fresh:
            print(f"warning: {key[0]}/{key[1]} missing from fresh run", file=sys.stderr)
            continue
        ratio = fresh[key] / baseline[key] / factor
        delta_pct = (ratio - 1.0) * 100.0
        status = "OK " if ratio <= args.max_ratio else "FAIL"
        print(
            f"{status} {key[0]}/{key[1]}: baseline {baseline[key]:.1f} ns, "
            f"current {fresh[key]:.1f} ns, normalized ratio {ratio:.3f} "
            f"({delta_pct:+.1f}%, limit {args.max_ratio})"
        )
        if ratio > args.max_ratio:
            failures.append(
                f"{key[0]}/{key[1]} baseline {baseline[key]:.1f} ns -> "
                f"current {fresh[key]:.1f} ns ({delta_pct:+.1f}%, "
                f"limit {(args.max_ratio - 1.0) * 100.0:+.1f}%)"
            )

    for spec in args.pair:
        parts = spec.split(":")
        if len(parts) != 4:
            sys.exit(f"error: --pair wants GROUP:NUM:DEN:MAX_RATIO, got {spec!r}")
        group, num, den, limit = parts
        try:
            limit = float(limit)
        except ValueError:
            sys.exit(f"error: --pair max ratio must be a number, got {parts[3]!r}")
        missing = [b for b in (num, den) if (group, b) not in fresh]
        if missing:
            sys.exit(
                f"error: fresh run has no bench "
                f"{', '.join(f'{group}/{b}' for b in missing)} (needed by --pair)"
            )
        den_ns = fresh[(group, den)]
        if den_ns <= 0:
            sys.exit(f"error: {group}/{den} measured {den_ns} ns; cannot form a ratio")
        num_ns = fresh[(group, num)]
        ratio = num_ns / den_ns
        delta_pct = (ratio - 1.0) * 100.0
        status = "OK " if ratio <= limit else "FAIL"
        print(
            f"{status} {group}: {num} {num_ns:.1f} ns vs {den} {den_ns:.1f} ns, "
            f"ratio {ratio:.3f} ({delta_pct:+.1f}%, limit {limit})"
        )
        if ratio > limit:
            failures.append(
                f"{group}/{num} costs {ratio:.3f}x of {group}/{den} "
                f"({num_ns:.1f} ns vs {den_ns:.1f} ns, {delta_pct:+.1f}%, "
                f"limit {(limit - 1.0) * 100.0:+.1f}%)"
            )

    if failures:
        sys.exit("bench regression: " + "; ".join(failures))
    print("no regression detected")


if __name__ == "__main__":
    main()
