#!/usr/bin/env python3
"""Chaos / fault-injection smoke test of the rft-serve daemon (CI gate).

Drives the real binaries over real sockets with hostile clients, all
derived from a fixed ``--seed`` so failures replay:

1. start ``rft-serve`` with a deliberately small pool (2 workers, accept
   queue 2, max 2 jobs) and tight request timeout;
2. **connection flood**: many concurrent job posts; every client must
   get either a complete 200 stream whose final line ``repro replay``
   reproduces byte-identically, or a ``503`` carrying ``Retry-After``;
   ``/stats`` must account the shed requests;
3. **slow-loris**: a header dribbled forever must answer ``408`` within
   the request timeout, not hold a worker;
4. **byte-dribble**: a body dripped slowly but within the deadline must
   be served normally;
5. **mid-stream disconnect**: dropping a streaming connection must free
   the worker (a follow-up job completes) and bump
   ``early_disconnects``;
6. **deadline**: a job with ``deadline_ms`` too small must stream a
   clean ``cancelled`` line and terminate the chunked body properly;
7. **seeded garbage**: random request prefixes and byte noise must never
   kill the daemon;
8. SIGTERM must still drain and exit 0 after all of the above.

Artifacts (daemon log, per-scenario transcripts) are written to
``--out`` for CI upload. Exit code 0 = all checks passed.

Usage:
    serve_chaos.py [--bin-dir target/release] [--out serve-chaos-out]
                   [--seed 228519133]
"""

import argparse
import http.client
import json
import pathlib
import signal
import socket
import subprocess
import sys
import time

CHECKS = []


def check(name, ok, detail=""):
    CHECKS.append((name, ok))
    print(f"  {'PASS' if ok else 'FAIL'}  {name}" + (f" ({detail})" if detail else ""))
    if not ok:
        sys.exit(f"serve_chaos: check failed: {name} {detail}")


def splitmix64(x):
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def job_spec(seed, trials_per_round, max_rounds, deadline_ms=None):
    spec = {
        "circuit": {
            "Concat": {
                "level": 1,
                "gate": {"Toffoli": {"controls": [0, 1], "target": 2}},
                "cycles": 1,
            }
        },
        "noise": {"Uniform": {"g": 1.0 / 165.0}},
        "seed": seed,
        "estimator": "Plain",
        "backend": "Auto",
        "width": "Auto",
        "trials_per_round": trials_per_round,
        "max_rounds": max_rounds,
        "target_rel_half_width": None,
    }
    if deadline_ms is not None:
        spec["deadline_ms"] = deadline_ms
    return spec


def start_daemon(bin_dir, out_dir):
    exe = pathlib.Path(bin_dir) / "rft-serve"
    if not exe.exists():
        sys.exit(f"serve_chaos: {exe} not found (build with `cargo build --release`)")
    log = open(out_dir / "daemon.log", "w", encoding="utf-8")
    proc = subprocess.Popen(
        [
            str(exe),
            "--addr", "127.0.0.1:0",
            "--threads", "2",
            "--threads-per-job", "1",
            "--workers", "2",
            "--accept-queue", "2",
            "--max-jobs", "2",
            "--request-timeout-ms", "1000",
            "--idle-timeout-ms", "5000",
            "--drain-timeout", "5",
        ],
        stdout=subprocess.PIPE,
        stderr=log,
        text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on "):
        proc.kill()
        sys.exit(f"serve_chaos: unexpected startup line: {line!r}")
    addr = line.removeprefix("listening on ")
    host, _, port = addr.rpartition(":")
    return proc, host, int(port)


def request(host, port, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def raw_post_job(host, port, spec, timeout=120):
    """POST a job over a raw socket; returns (status_line, headers, body)."""
    body = json.dumps({"schema_version": 1, "spec": spec}).encode()
    with socket.create_connection((host, port), timeout=timeout) as s:
        s.sendall(
            b"POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        raw = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, payload = raw.partition(b"\r\n\r\n")
    head_text = head.decode("utf-8", "replace")
    if "transfer-encoding: chunked" in head_text.lower():
        payload = decode_chunked(payload)
    return head_text, payload


def decode_chunked(data):
    out = b""
    while True:
        size_line, _, data = data.partition(b"\r\n")
        size = int(size_line.split(b";")[0].strip() or b"0", 16)
        if size == 0:
            return out
        out += data[:size]
        data = data[size + 2:]


def replay(bin_dir, out_dir, tag, record):
    job_path = out_dir / f"job-{tag}.json"
    job_path.write_text(json.dumps(record), encoding="utf-8")
    repro = pathlib.Path(bin_dir) / "repro"
    return subprocess.run(
        [str(repro), "replay", str(job_path), "--threads", "2"],
        capture_output=True,
        text=True,
        timeout=120,
        check=True,
    ).stdout.strip()


def scenario_flood(host, port, bin_dir, out_dir, seed):
    import concurrent.futures

    n = 16
    specs = [job_spec(9000 + i, 1 << 18, 2) for i in range(n)]
    with concurrent.futures.ThreadPoolExecutor(max_workers=n) as pool:
        results = list(pool.map(lambda s: raw_post_job(host, port, s), specs))
    completed = shed = 0
    transcript = []
    for spec, (head, payload) in zip(specs, results):
        status_line = head.splitlines()[0] if head else "<empty>"
        transcript.append(status_line)
        if status_line.startswith("HTTP/1.1 200"):
            lines = payload.decode().splitlines()
            final = json.loads(lines[-1])
            check(
                f"flood: job seed {spec['seed']} final line replays byte-identically",
                replay(bin_dir, out_dir, f"flood-{spec['seed']}", final["record"])
                == lines[-1],
            )
            completed += 1
        else:
            check(
                "flood: non-200 answers are 503 with Retry-After",
                status_line.startswith("HTTP/1.1 503")
                and "retry-after:" in head.lower(),
                status_line,
            )
            shed += 1
    (out_dir / "flood.txt").write_text("\n".join(transcript) + "\n", encoding="utf-8")
    check("flood: every client got an answer", completed + shed == n)
    check("flood: some jobs completed", completed >= 1, f"{completed}/{n}")
    check("flood: overload shed some requests", shed >= 1, f"{shed}/{n}")
    _, _, body = request(host, port, "GET", "/stats", timeout=10)
    stats = json.loads(body)
    check("flood: /stats accounts the shed requests", stats["shed"] >= shed,
          f"stats {stats['shed']} >= observed {shed}")


def scenario_slow_loris(host, port):
    start = time.monotonic()
    with socket.create_connection((host, port), timeout=30) as s:
        head = b"GET /healthz HTTP/1.1\r\nhost: chaos\r\nx-pad: aaaaaaaaaaaa\r\n"
        status = b""
        for i in range(0, len(head), 3):
            try:
                s.sendall(head[i : i + 3])
            except OSError:
                break
            time.sleep(0.12)
        s.settimeout(10)
        try:
            while True:
                chunk = s.recv(4096)
                if not chunk:
                    break
                status += chunk
        except OSError:
            pass
    elapsed = time.monotonic() - start
    check("loris: dribbled head answers 408", b"HTTP/1.1 408" in status,
          status[:64].decode("utf-8", "replace"))
    check("loris: answered near the request timeout", elapsed < 10, f"{elapsed:.1f}s")


def scenario_dribble(host, port, bin_dir, out_dir, seed):
    spec = job_spec(777, 4096, 2)
    body = json.dumps({"schema_version": 1, "spec": spec}).encode()
    with socket.create_connection((host, port), timeout=60) as s:
        s.sendall(
            b"POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
        )
        state, sent = seed, 0
        while sent < len(body):
            state = splitmix64(state)
            step = min(1 + state % 41, len(body) - sent)
            s.sendall(body[sent : sent + step])
            sent += step
            time.sleep(0.01)
        raw = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, payload = raw.partition(b"\r\n\r\n")
    check("dribble: slow-but-live body is served", head.startswith(b"HTTP/1.1 200"),
          head[:64].decode("utf-8", "replace"))
    lines = decode_chunked(payload).decode().splitlines()
    final = json.loads(lines[-1])
    check(
        "dribble: final line replays byte-identically",
        replay(bin_dir, out_dir, "dribble", final["record"]) == lines[-1],
    )


def scenario_disconnect(host, port, bin_dir, out_dir):
    spec = job_spec(888, 65536, 4096)
    body = json.dumps({"schema_version": 1, "spec": spec}).encode()
    s = socket.create_connection((host, port), timeout=60)
    s.sendall(
        b"POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: "
        + str(len(body)).encode()
        + b"\r\n\r\n"
        + body
    )
    seen = b""
    while b'"kind":"interval"' not in seen:
        chunk = s.recv(4096)
        if not chunk:
            sys.exit("serve_chaos: stream ended before first interval")
        seen += chunk
    s.close()  # disconnect mid-stream

    deadline = time.monotonic() + 30
    while True:
        head, payload = raw_post_job(host, port, job_spec(889, 4096, 1))
        if head.startswith("HTTP/1.1 200"):
            lines = payload.decode().splitlines()
            final = json.loads(lines[-1])
            check(
                "disconnect: follow-up job replays byte-identically",
                replay(bin_dir, out_dir, "disconnect", final["record"]) == lines[-1],
            )
            break
        if time.monotonic() > deadline:
            sys.exit(f"serve_chaos: worker never freed after disconnect: {head}")
        time.sleep(0.2)
    _, _, body = request(host, port, "GET", "/stats", timeout=10)
    stats = json.loads(body)
    check("disconnect: early_disconnects counted", stats["early_disconnects"] >= 1)


def scenario_deadline(host, port):
    head, payload = raw_post_job(host, port, job_spec(999, 1 << 18, 64, deadline_ms=1))
    check("deadline: stream answers 200", head.startswith("HTTP/1.1 200"),
          head.splitlines()[0] if head else "<empty>")
    lines = payload.decode().splitlines()
    last = json.loads(lines[-1])
    check(
        "deadline: stream ends with a clean cancelled line",
        last["kind"] == "cancelled" and "deadline" in last["reason"],
        lines[-1][:80],
    )


def scenario_garbage(host, port, seed):
    valid = (
        b"POST /jobs HTTP/1.1\r\nconnection: close\r\ncontent-length: 4\r\n\r\n{\"a\""
    )
    state = seed ^ 0xBADF00D
    for _ in range(16):
        state = splitmix64(state)
        try:
            with socket.create_connection((host, port), timeout=5) as s:
                kind = state % 2
                if kind == 0:
                    cut = splitmix64(state ^ 1) % len(valid)
                    s.sendall(valid[:cut])
                else:
                    n = 1 + splitmix64(state ^ 2) % 48
                    s.sendall(bytes((splitmix64(state ^ (3 + i)) & 0xFF) for i in range(n)))
                # Hard close either way.
        except OSError:
            pass
    # Right after the burst the accept queue may still be full (healthz
    # itself gets shed 503); survival means it recovers promptly.
    deadline = time.monotonic() + 10
    while True:
        try:
            status, _, body = request(host, port, "GET", "/healthz", timeout=5)
            if status == 200 and b'"status"' in body:
                break
        except OSError:
            pass
        if time.monotonic() > deadline:
            check("garbage: daemon survives seeded noise", False, "no healthy answer")
        time.sleep(0.2)
    check("garbage: daemon survives seeded noise", True)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin-dir", default="target/release")
    ap.add_argument("--out", default="serve-chaos-out")
    ap.add_argument("--seed", type=int, default=228519133)
    args = ap.parse_args()
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    proc, host, port = start_daemon(args.bin_dir, out_dir)
    print(f"serve_chaos: daemon on {host}:{port} (pid {proc.pid}, seed {args.seed})")
    try:
        status, _, body = request(host, port, "GET", "/healthz", timeout=10)
        check("healthz answers 200", status == 200 and b'"status"' in body)

        scenario_flood(host, port, args.bin_dir, out_dir, args.seed)
        scenario_slow_loris(host, port)
        scenario_dribble(host, port, args.bin_dir, out_dir, args.seed)
        scenario_disconnect(host, port, args.bin_dir, out_dir)
        scenario_deadline(host, port)
        scenario_garbage(host, port, args.seed)

        status, _, body = request(host, port, "GET", "/stats", timeout=10)
        (out_dir / "stats.json").write_bytes(body)
        check("stats still served after chaos", status == 200)

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=20)
        check("SIGTERM drains and exits 0 after chaos", rc == 0, f"exit code {rc}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    print(f"serve_chaos: all {len(CHECKS)} checks passed; artifacts in {out_dir}/")


if __name__ == "__main__":
    main()
