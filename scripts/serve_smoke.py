#!/usr/bin/env python3
"""End-to-end smoke test of the rft-serve daemon (CI gate).

Drives the real binaries over a real socket:

1. start ``rft-serve`` on an ephemeral loopback port and wait for its
   ``listening on <addr>`` line;
2. ``GET /healthz`` must answer ``{"status":"ok"}``;
3. ``POST /jobs`` with a small deterministic job; validate the NDJSON
   stream (monotone interval lines, one terminal ``final`` line embedding
   the submitted record);
4. extract the job record from the final line, run
   ``repro replay job.json`` offline, and require the replayed final line
   to be **byte-identical** to the served one — the determinism contract;
5. malformed and oversized requests must answer 4xx (daemon survives);
6. SIGTERM must drain and exit 0 within the drain timeout.

Artifacts (stream transcript, job record, replay output) are written to
``--out`` for CI upload. Exit code 0 = all checks passed.

Usage:
    serve_smoke.py [--bin-dir target/release] [--out serve-smoke-out]
"""

import argparse
import http.client
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

JOB_SPEC = {
    "circuit": {
        "Concat": {
            "level": 1,
            "gate": {"Toffoli": {"controls": [0, 1], "target": 2}},
            "cycles": 1,
        }
    },
    "noise": {"Uniform": {"g": 1.0 / 165.0}},
    "seed": 20050628,
    "estimator": "Plain",
    "backend": "Auto",
    "width": "Auto",
    "trials_per_round": 4096,
    "max_rounds": 3,
    "target_rel_half_width": None,
}

CHECKS = []


def check(name, ok, detail=""):
    CHECKS.append((name, ok))
    print(f"  {'PASS' if ok else 'FAIL'}  {name}" + (f" ({detail})" if detail else ""))
    if not ok:
        sys.exit(f"serve_smoke: check failed: {name} {detail}")


def start_daemon(bin_dir, out_dir):
    exe = pathlib.Path(bin_dir) / "rft-serve"
    if not exe.exists():
        sys.exit(f"serve_smoke: {exe} not found (build with `cargo build --release`)")
    log = open(out_dir / "daemon.log", "w", encoding="utf-8")
    proc = subprocess.Popen(
        [str(exe), "--addr", "127.0.0.1:0", "--threads", "2", "--drain-timeout", "5"],
        stdout=subprocess.PIPE,
        stderr=log,
        text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on "):
        proc.kill()
        sys.exit(f"serve_smoke: unexpected startup line: {line!r}")
    addr = line.removeprefix("listening on ")
    host, _, port = addr.rpartition(":")
    return proc, host, int(port)


def request(host, port, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin-dir", default="target/release")
    ap.add_argument("--out", default="serve-smoke-out")
    args = ap.parse_args()
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    proc, host, port = start_daemon(args.bin_dir, out_dir)
    print(f"serve_smoke: daemon on {host}:{port} (pid {proc.pid})")
    try:
        status, body = request(host, port, "GET", "/healthz", timeout=10)
        check("healthz answers 200 ok", status == 200 and b'"status":"ok"' in body)

        # --- the streamed job --------------------------------------------
        job_body = json.dumps({"schema_version": 1, "spec": JOB_SPEC})
        status, stream = request(host, port, "POST", "/jobs", body=job_body)
        (out_dir / "stream.ndjson").write_bytes(stream)
        check("job answers 200", status == 200, f"status {status}")
        lines = stream.decode("utf-8").splitlines()
        check(
            "stream has interval lines + final line",
            len(lines) == JOB_SPEC["max_rounds"] + 1,
            f"{len(lines)} lines",
        )
        updates = [json.loads(line) for line in lines]
        check(
            "interval lines are monotone in round and trials",
            all(
                u["kind"] == "interval"
                and u["round"] == i + 1
                and u["estimate"]["trials"] == (i + 1) * JOB_SPEC["trials_per_round"]
                for i, u in enumerate(updates[:-1])
            ),
        )
        final = updates[-1]
        check("final line is terminal", final["kind"] == "final")
        check(
            "final line embeds the submitted record",
            final["record"]["spec"] == json.loads(job_body)["spec"],
        )

        # --- offline replay: byte-identical ------------------------------
        served_final_line = lines[-1]
        job_path = out_dir / "job.json"
        job_path.write_text(json.dumps(final["record"]), encoding="utf-8")
        repro = pathlib.Path(args.bin_dir) / "repro"
        replayed = subprocess.run(
            [str(repro), "replay", str(job_path), "--threads", "3"],
            capture_output=True,
            text=True,
            timeout=120,
            check=True,
        ).stdout.strip()
        (out_dir / "replay.json").write_text(replayed + "\n", encoding="utf-8")
        check(
            "repro replay reproduces the served final line byte-identically",
            replayed == served_final_line,
        )

        # --- cache visibility --------------------------------------------
        status, body = request(host, port, "GET", "/stats", timeout=10)
        stats = json.loads(body)
        (out_dir / "stats.json").write_bytes(body)
        check(
            "stats shows the compiled artifacts",
            status == 200 and stats["cache_programs"] >= 1 and stats["cache_engines"] >= 1,
        )

        # --- robustness ---------------------------------------------------
        status, _ = request(host, port, "POST", "/jobs", body="{not json", timeout=10)
        check("malformed JSON answers 400", status == 400, f"status {status}")
        status, _ = request(
            host, port, "POST", "/jobs", body=json.dumps({"seed": 1}), timeout=10
        )
        check("incomplete spec answers 400", status == 400, f"status {status}")
        status, _ = request(host, port, "GET", "/no-such", timeout=10)
        check("unknown path answers 404", status == 404, f"status {status}")
        status, body = request(host, port, "GET", "/healthz", timeout=10)
        check("daemon survives garbage", status == 200)

        # --- graceful shutdown -------------------------------------------
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=15)
        check("SIGTERM drains and exits 0", rc == 0, f"exit code {rc}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    print(f"serve_smoke: all {len(CHECKS)} checks passed; artifacts in {out_dir}/")


if __name__ == "__main__":
    main()
