#!/usr/bin/env python3
"""Validate `repro --json` output against the documented report schema.

Usage: validate_report_schema.py DIR

DIR must contain manifest.json plus one <id>.json per experiment the
manifest lists. Exits nonzero (with a message per violation) if any file
is missing, malformed, or shaped differently from the schema documented
in BENCH_NOTES.md (schema_version 1).
"""

import json
import sys
from pathlib import Path

SCHEMA_VERSION = 1


def fail(errors):
    for e in errors:
        print(f"schema violation: {e}", file=sys.stderr)
    sys.exit(1)


def load_json(path, errors):
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or malformed JSON: {e}")
        return None


def check_type(errors, obj, key, types, where):
    if key not in obj:
        errors.append(f"{where}: missing key {key!r}")
        return None
    if not isinstance(obj[key], types):
        errors.append(
            f"{where}: {key!r} should be {types}, got {type(obj[key]).__name__}"
        )
        return None
    return obj[key]


def validate_report(report, where, errors):
    if check_type(errors, report, "schema_version", int, where) != SCHEMA_VERSION:
        errors.append(f"{where}: schema_version must be {SCHEMA_VERSION}")
    check_type(errors, report, "id", str, where)
    check_type(errors, report, "title", str, where)
    tags = check_type(errors, report, "tags", list, where) or []
    if not tags:
        errors.append(f"{where}: tags must be non-empty")
    for t in check_type(errors, report, "tables", list, where) or []:
        headers = check_type(errors, t, "headers", list, f"{where}/table")
        for row in check_type(errors, t, "rows", list, f"{where}/table") or []:
            if headers is not None and len(row) != len(headers):
                errors.append(f"{where}/table {t.get('title')!r}: ragged row")
    for s in check_type(errors, report, "series", list, where) or []:
        for key in ("name", "x_label", "y_label"):
            check_type(errors, s, key, str, f"{where}/series")
        for pt in check_type(errors, s, "points", list, f"{where}/series") or []:
            # NaN/Inf serialize as JSON null — reject them too, or the
            # documented Report::from_json round trip breaks downstream.
            numeric = isinstance(pt, list) and len(pt) == 2 and all(
                isinstance(v, (int, float)) and not isinstance(v, bool) for v in pt
            )
            if not numeric:
                errors.append(f"{where}/series {s.get('name')!r}: bad point {pt!r}")
    checks = check_type(errors, report, "checks", list, where) or []
    for c in checks:
        check_type(errors, c, "name", str, f"{where}/check")
        check_type(errors, c, "got", str, f"{where}/check")
        check_type(errors, c, "want", str, f"{where}/check")
        check_type(errors, c, "pass", bool, f"{where}/check")
    check_type(errors, report, "notes", list, where)
    # Optional, additive (still schema_version 1): the observability
    # layer's resource section, attached by `repro --metrics`. Reports
    # written without it must not carry the key at all.
    if "resources" in report:
        res = check_type(errors, report, "resources", dict, where) or {}
        rwhere = f"{where}/resources"
        for key in ("wall_ms", "compile_ms", "execute_ms", "words_per_sec", "elided_mass"):
            check_type(errors, res, key, (int, float), rwhere)
        for key in (
            "executed_words",
            "executed_trials",
            "cache_hits",
            "cache_misses",
            "stratified_rounds",
        ):
            v = check_type(errors, res, key, int, rwhere)
            if isinstance(v, int) and v < 0:
                errors.append(f"{rwhere}: {key} must be non-negative, got {v}")
    return checks


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    out = Path(sys.argv[1])
    errors = []

    manifest_path = out / "manifest.json"
    if not manifest_path.is_file():
        fail([f"{manifest_path} not found"])
    manifest = load_json(manifest_path, errors)
    if manifest is None:
        fail(errors)
    where = "manifest.json"
    if check_type(errors, manifest, "schema_version", int, where) != SCHEMA_VERSION:
        errors.append(f"{where}: schema_version must be {SCHEMA_VERSION}")
    config = check_type(errors, manifest, "config", dict, where) or {}
    for key in ("trials", "seed", "threads"):
        check_type(errors, config, key, int, f"{where}/config")
    check_type(errors, manifest, "wall_ms", (int, float), where)
    entries = check_type(errors, manifest, "experiments", list, where) or []
    if not entries:
        errors.append(f"{where}: experiments must be non-empty")

    for n, entry in enumerate(entries):
        if not isinstance(entry, dict):
            errors.append(f"manifest experiments[{n}]: not an object: {entry!r}")
            continue
        eid = entry.get("id", "?")
        where = f"manifest entry {eid!r}"
        check_type(errors, entry, "id", str, where)
        check_type(errors, entry, "title", str, where)
        check_type(errors, entry, "passed", bool, where)
        check_type(errors, entry, "checks", int, where)
        check_type(errors, entry, "wall_ms", (int, float), where)
        file = check_type(errors, entry, "file", str, where)
        if file is None:
            continue
        path = out / file
        if not path.is_file():
            errors.append(f"{where}: report file {file} not found")
            continue
        report = load_json(path, errors)
        if not isinstance(report, dict):
            if report is not None:
                errors.append(f"{file}: top level is not an object")
            continue
        checks = validate_report(report, file, errors)
        if report.get("id") != entry.get("id"):
            errors.append(f"{file}: id {report.get('id')!r} != manifest {eid!r}")
        if len(checks) != entry.get("checks"):
            errors.append(f"{file}: {len(checks)} checks != manifest {entry.get('checks')}")
        if entry.get("passed") != all(c.get("pass") for c in checks):
            errors.append(f"{file}: manifest 'passed' disagrees with checks")

    if errors:
        fail(errors)
    print(f"validated manifest + {len(entries)} report file(s) in {out}/: schema OK")


if __name__ == "__main__":
    main()
