#!/usr/bin/env python3
"""Validate a `repro --trace FILE` Chrome-trace-event JSON.

Usage: validate_trace.py TRACE.json [--threads N]

Checks the shape Perfetto / chrome://tracing expect:

- top level is ``{"traceEvents": [...]}``;
- every event has ``ph`` either ``"X"`` (complete span: name, cat, ts,
  dur, pid, tid, all non-negative, optional ``args.label``) or ``"M"``
  (metadata: exactly one ``thread_name`` record per tid that appears in
  any span);
- spans on one thread nest properly — two spans either share no interior
  or one contains the other; a partial overlap means the span stack was
  corrupted;
- with ``--threads N``, at most N distinct span tids appear (the runner
  never spawns more workers than the thread budget).

Exits nonzero with one message per violation.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument(
        "--threads",
        type=int,
        default=None,
        help="upper bound on distinct span thread ids",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot parse {args.trace}: {e}")

    errors = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        sys.exit(f"error: {args.trace}: top level must be {{'traceEvents': [...]}}")

    spans = []
    named_tids = set()
    for n, e in enumerate(events):
        where = f"event[{n}]"
        if not isinstance(e, dict):
            errors.append(f"{where}: not an object: {e!r}")
            continue
        ph = e.get("ph")
        if ph == "X":
            for key, types in (
                ("name", str),
                ("cat", str),
                ("ts", (int, float)),
                ("dur", (int, float)),
                ("pid", int),
                ("tid", int),
            ):
                if not isinstance(e.get(key), types):
                    errors.append(f"{where}: bad or missing {key!r}: {e.get(key)!r}")
            if isinstance(e.get("ts"), (int, float)) and e["ts"] < 0:
                errors.append(f"{where}: negative ts {e['ts']}")
            if isinstance(e.get("dur"), (int, float)) and e["dur"] < 0:
                errors.append(f"{where}: negative dur {e['dur']}")
            if "args" in e and not isinstance(e["args"].get("label"), str):
                errors.append(f"{where}: span args must carry a string label")
            spans.append(e)
        elif ph == "M":
            if e.get("name") != "thread_name":
                errors.append(f"{where}: unknown metadata record {e.get('name')!r}")
                continue
            tid = e.get("tid")
            if not isinstance(tid, int):
                errors.append(f"{where}: thread_name without integer tid")
                continue
            if tid in named_tids:
                errors.append(f"{where}: duplicate thread_name for tid {tid}")
            named_tids.add(tid)
            if not isinstance(e.get("args", {}).get("name"), str):
                errors.append(f"{where}: thread_name without args.name")
        else:
            errors.append(f"{where}: unknown phase {ph!r}")

    span_tids = {e["tid"] for e in spans if isinstance(e.get("tid"), int)}
    for tid in sorted(span_tids - named_tids):
        errors.append(f"tid {tid} has spans but no thread_name metadata")
    if args.threads is not None and len(span_tids) > args.threads:
        errors.append(
            f"{len(span_tids)} distinct span tids exceed --threads {args.threads}"
        )

    # Nesting: on each thread, sort by (start, -end); with that order a
    # stack discipline holds iff every span fits inside the innermost
    # open span. Quadratic scan per thread kept simple — traces from the
    # smoke run are a few hundred events.
    by_tid = {}
    for e in spans:
        if isinstance(e.get("tid"), int) and isinstance(e.get("ts"), (int, float)):
            by_tid.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"], e["name"]))
    for tid, intervals in sorted(by_tid.items()):
        intervals.sort(key=lambda iv: (iv[0], -iv[1]))
        stack = []
        for start, end, name in intervals:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                errors.append(
                    f"tid {tid}: span {name!r} [{start}, {end}] partially overlaps "
                    f"{stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]}]"
                )
                continue
            stack.append((start, end, name))

    if errors:
        for e in errors:
            print(f"trace violation: {e}", file=sys.stderr)
        sys.exit(1)
    print(
        f"validated {len(spans)} span(s) on {len(span_tids)} thread(s) "
        f"in {args.trace}: trace OK"
    )


if __name__ == "__main__":
    main()
