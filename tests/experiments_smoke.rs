//! Smoke tests: every experiment reproduction runs at the quick budget and
//! asserts its headline claim, so `cargo test` certifies the full
//! EXPERIMENTS.md pipeline.

use reversible_ft::analysis::experiments::{
    advantage, blowup, entropy, fig2, levelreq, local, nand, suppression, table1, table2,
    threshold, RunConfig,
};

fn quick() -> RunConfig {
    RunConfig {
        trials: 2_000,
        seed: 2005,
        threads: 4,
        ..RunConfig::quick()
    }
}

#[test]
fn table1_all_checks_pass() {
    assert!(table1::run().all_ok());
}

#[test]
fn fig2_verifies_fault_tolerance_claims() {
    assert!(fig2::run().all_ok());
}

#[test]
fn threshold_sweep_brackets_and_beats_the_analytic_bound() {
    let r = threshold::run(&quick());
    assert!(
        r.crossings_above_analytic(),
        "{:?}",
        r.series
            .iter()
            .map(|s| s.measured_crossing)
            .collect::<Vec<_>>()
    );
}

#[test]
fn suppression_below_threshold() {
    assert!(suppression::run(&quick()).below_threshold_suppression());
}

#[test]
fn blowup_worked_example() {
    assert!(blowup::run().worked_example_ok());
}

#[test]
fn levelreq_exponent() {
    assert!(levelreq::run().exponent_consistent());
}

#[test]
fn local_structure_and_ordering() {
    let r = local::run(&quick());
    assert!(r.structure_ok());
    assert!(r.mc_ordering_ok());
}

#[test]
fn table2_matches() {
    assert!(table2::run().matches_paper());
}

#[test]
fn entropy_within_bounds() {
    let r = entropy::run(&RunConfig {
        trials: 6_000,
        ..quick()
    });
    assert!(r.within_bounds());
}

#[test]
fn nand_footnote_4() {
    assert!(nand::run().footnote_4_ok());
}

#[test]
fn advantage_window() {
    assert!(advantage::run().monotone_in_g());
}

#[test]
fn ablation_confirms_design_choices() {
    use reversible_ft::analysis::experiments::ablation;
    assert!(ablation::run(&RunConfig {
        trials: 5_000,
        ..quick()
    })
    .confirms_design());
}
