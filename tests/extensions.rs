//! Integration tests for the extension modules: synthesis, cooling and
//! diagram rendering working together with the FT stack.

use reversible_ft::core::cooling::{bias_ladder, CoolingTree};
use reversible_ft::core::maj::maj_permutation;
use reversible_ft::core::prelude::*;
use reversible_ft::core::synth::Synthesizer;
use reversible_ft::revsim::permutation::Permutation;
use reversible_ft::revsim::prelude::*;

#[test]
fn synthesized_circuits_compile_fault_tolerantly() {
    // Synthesize a circuit for MAJ∘MAJ from the universal set, then push
    // it through the level-1 FT compiler and check end-to-end semantics.
    let synth = Synthesizer::new(&[OpKind::Not, OpKind::Cnot, OpKind::Toffoli]);
    let target = maj_permutation().compose(&maj_permutation());
    let logical = synth.circuit_for(&target).expect("universal gate set");
    let program = FtBuilder::compile(1, &logical).expect("gate-only circuit");
    for input in 0..8u64 {
        let mut s = program.encode(&BitState::from_u64(input, 3));
        program.circuit().run(&mut s);
        assert_eq!(program.decode(&s).to_u64(), target.apply(input));
    }
}

#[test]
fn synthesis_distances_respect_composition() {
    // d(p∘q) ≤ d(p) + d(q) — BFS distances form a metric under the
    // generating set.
    let synth = Synthesizer::new(&[OpKind::Not, OpKind::Cnot, OpKind::Toffoli]);
    let p = maj_permutation();
    let q = p.inverse();
    let dp = synth.distance(&p).unwrap();
    let dq = synth.distance(&q).unwrap();
    let dpq = synth.distance(&p.compose(&q)).unwrap();
    assert!(dpq <= dp + dq);
    assert_eq!(dpq, 0, "MAJ ∘ MAJ⁻¹ is the identity");
}

#[test]
fn maj_primitive_gate_set_synthesizes_short_recoveries() {
    // With MAJ/MAJ⁻¹ native, the decode step MAJ is a 1-gate circuit —
    // the economy the paper's gate choice buys.
    let synth = Synthesizer::new(&[OpKind::Maj, OpKind::MajInv, OpKind::Not]);
    assert_eq!(synth.distance(&maj_permutation()), Some(1));
}

#[test]
fn cooling_tree_feeds_cold_ancillas() {
    // The cooling tree's analytic ladder matches the §4 story: bias rises
    // toward 1 (entropy toward 0), making recycled ancillas usable.
    let ladder = bias_ladder(0.3, 6);
    assert!(ladder.last().unwrap() > &0.95);
    let tree = CoolingTree::new(2);
    let circuit = tree.circuit();
    // The circuit is purely reversible — no resets needed to *concentrate*
    // the cold bits; resets are only paid for the hot remainder.
    assert!(circuit.is_reversible());
    assert_eq!(circuit.stats().maj_family(), 4);
}

#[test]
fn diagrams_render_every_cycle_we_build() {
    // Rendering must not panic and must produce one line per wire for all
    // the major circuits in the repository.
    let circuits: Vec<Circuit> = vec![
        recovery_circuit(),
        reversible_ft::locality::prelude::build_recovery_1d().0,
        transversal_cycle(&Gate::Toffoli {
            controls: [w(0), w(1)],
            target: w(2),
        })
        .circuit()
        .clone(),
    ];
    for c in circuits {
        let text = render(&c);
        assert_eq!(text.lines().count(), c.n_wires());
        for line in text.lines() {
            assert!(line.contains(": "), "wire label missing in {line:?}");
        }
    }
}

#[test]
fn swap_synthesis_needs_three_cnots() {
    // The classic result: SWAP = 3 CNOTs, and no shorter circuit exists
    // over {NOT, CNOT, Toffoli}.
    let synth = Synthesizer::new(&[OpKind::Not, OpKind::Cnot, OpKind::Toffoli]);
    let mut c = Circuit::new(3);
    c.swap(w(0), w(1));
    let target = Permutation::of_circuit(&c).unwrap();
    assert_eq!(synth.distance(&target), Some(3));
}

#[test]
fn fredkin_from_universal_set_is_short() {
    let synth = Synthesizer::new(&[OpKind::Not, OpKind::Cnot, OpKind::Toffoli]);
    let mut c = Circuit::new(3);
    c.fredkin(w(0), w(1), w(2));
    let target = Permutation::of_circuit(&c).unwrap();
    let d = synth.distance(&target).unwrap();
    // Fredkin = CNOT · Toffoli · CNOT.
    assert_eq!(d, 3);
    let found = synth.circuit_for(&target).unwrap();
    assert_eq!(Permutation::of_circuit(&found).unwrap(), target);
}
