//! The fault-tolerance theorems of the paper, verified by exhaustion
//! across all three architectures — including the reproduction finding
//! about 1D interleaving (see DESIGN.md).

use reversible_ft::core::prelude::*;
use reversible_ft::locality::prelude::*;
use reversible_ft::revsim::permutation::Permutation;
use reversible_ft::revsim::prelude::*;

fn toffoli() -> Gate {
    Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    }
}

#[test]
fn recovery_circuits_tolerate_any_single_fault() {
    // Figure 2 (non-local) and Figure 7 (1D local): every possible single
    // fault leaves at most one error per output codeword.
    let fig2 = CycleSpec::new(
        recovery_circuit(),
        vec![DATA_IN],
        vec![DATA_OUT],
        Permutation::identity(1),
    );
    let sweep = fig2.sweep_single_faults();
    assert!(sweep.is_fault_tolerant());
    assert_eq!(sweep.plans, 64);

    let (c, _, tile) = build_recovery_1d();
    let fig7 = CycleSpec::new(
        c,
        vec![tile.data()],
        vec![tile.data()],
        Permutation::identity(1),
    );
    let sweep = fig7.sweep_single_faults();
    assert!(sweep.is_fault_tolerant());
    assert_eq!(sweep.first_order_worst, 0.0);
}

#[test]
fn two_faults_defeat_every_recovery() {
    // Distance-3 code: the single-fault guarantee is tight.
    let fig2 = CycleSpec::new(
        recovery_circuit(),
        vec![DATA_IN],
        vec![DATA_OUT],
        Permutation::identity(1),
    );
    assert!(fig2.find_double_fault_failure().is_some());
}

#[test]
fn full_cycles_nonlocal_and_2d_perpendicular_are_fault_tolerant() {
    for (name, spec) in [
        ("non-local", transversal_cycle(&toffoli())),
        (
            "2D perpendicular",
            build_cycle_2d(&toffoli(), InterleaveScheme::Perpendicular).to_cycle_spec(&toffoli()),
        ),
    ] {
        spec.verify_ideal()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let sweep = spec.sweep_single_faults();
        assert!(sweep.is_fault_tolerant(), "{name}: {:?}", sweep.worst);
        assert_eq!(sweep.first_order_worst, 0.0, "{name}");
    }
}

#[test]
fn finding_1d_and_parallel_2d_interleaves_are_not_fault_tolerant() {
    // REPRODUCTION FINDING: data bits of different codewords must cross
    // during 1D (and parallel-2D) interleaving; a single fault at a
    // crossing corrupts two codewords at misaligned positions, which the
    // transversal gate multiplies into two errors in one codeword.
    let d1 = build_cycle_1d(&toffoli()).to_cycle_spec(&toffoli());
    let sweep1 = d1.sweep_single_faults();
    assert!(!sweep1.is_fault_tolerant());
    assert!(sweep1.first_order_worst > 0.0 && sweep1.first_order_worst < 5.0);

    let par = build_cycle_2d(&toffoli(), InterleaveScheme::Parallel).to_cycle_spec(&toffoli());
    let sweep2 = par.sweep_single_faults();
    assert!(!sweep2.is_fault_tolerant());
}

#[test]
fn every_gate_kind_cycles_fault_tolerantly_nonlocal() {
    // The FT property is gate-independent for 3-bit gates in the
    // non-local scheme.
    let gates = [
        Gate::Maj(w(0), w(1), w(2)),
        Gate::MajInv(w(2), w(1), w(0)),
        Gate::Fredkin {
            control: w(1),
            targets: [w(0), w(2)],
        },
        Gate::Swap3(w(2), w(0), w(1)),
        toffoli(),
    ];
    for gate in gates {
        let spec = transversal_cycle(&gate);
        spec.verify_ideal()
            .unwrap_or_else(|e| panic!("{gate:?}: {e}"));
        let sweep = spec.sweep_single_faults();
        assert!(sweep.is_fault_tolerant(), "{gate:?}: {:?}", sweep.worst);
    }
}

#[test]
fn level_two_tolerates_any_single_physical_fault() {
    // Concatenation: a single physical fault anywhere in a full level-2
    // cycle must never flip the decoded logical value. Exhaustive over all
    // (op, pattern) pairs for two fixed inputs.
    use reversible_ft::revsim::fault::single_fault_plans;

    let mut b = FtBuilder::new(2, 3);
    b.apply(&toffoli());
    let program = b.finish();
    let mut logical = Circuit::new(3);
    logical.toffoli(w(0), w(1), w(2));
    let perm = Permutation::of_circuit(&logical).unwrap();

    for input in [0b011u64, 0b101] {
        let encoded = program.encode(&BitState::from_u64(input, 3));
        let expect = perm.apply(input);
        for plan in single_fault_plans(program.circuit()) {
            let mut s = encoded.clone();
            PlannedFaultBackend::new(&plan).run_state(program.circuit(), &mut s);
            assert_eq!(
                program.decode(&s).to_u64(),
                expect,
                "input {input:03b}, plan {plan:?}"
            );
        }
    }
}
