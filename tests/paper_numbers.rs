//! Every number printed in the paper, asserted in one place.
//!
//! This is the contract of the reproduction: if a refactor changes any of
//! these, we are no longer building the DSN 2005 system.

use reversible_ft::core::entropy;
use reversible_ft::core::prelude::*;

#[test]
fn section_2_thresholds() {
    // "we get threshold results of ρ = 1/165 and ρ = 1/108, respectively"
    assert!((GateBudget::NONLOCAL_WITH_INIT.threshold() - 1.0 / 165.0).abs() < 1e-15);
    assert!((GateBudget::NONLOCAL_NO_INIT.threshold() - 1.0 / 108.0).abs() < 1e-15);
    // abstract: "work reliably even if each gate has an error probability
    // as high as 1/10⁸"… the arXiv abstract's 1/108 — G = 9 case.
    assert_eq!(GateBudget::NONLOCAL_NO_INIT.ops(), 9);
    assert_eq!(GateBudget::NONLOCAL_WITH_INIT.ops(), 11);
}

#[test]
fn section_2_recovery_op_counts() {
    // "apply three MAJ⁻¹ gates, and three MAJ gates for a total of eight
    // gate operations (six if initialization can be assumed…)"
    assert_eq!(E_WITH_INIT, 8);
    assert_eq!(E_NO_INIT, 6);
    let c = recovery_circuit();
    assert_eq!(c.len(), 8);
    assert_eq!(c.stats().init_ops(), 2);
}

#[test]
fn section_23_blowups() {
    // Γ_k = (3(G−2))^k and S_k = 9^k.
    assert_eq!(GateBudget::NONLOCAL_WITH_INIT.gate_blowup(1), 27.0);
    assert_eq!(GateBudget::NONLOCAL_WITH_INIT.gate_blowup(2), 729.0);
    assert_eq!(GateBudget::size_blowup(1), 9.0);
    assert_eq!(GateBudget::size_blowup(4), 6561.0);
    // "(3(G−2))^L = O((log T)^4.75)" and "≈ (log T)^3.17".
    assert!((GateBudget::NONLOCAL_WITH_INIT.gate_blowup_exponent() - 4.75).abs() < 0.01);
    assert!((GateBudget::size_blowup_exponent() - 3.17).abs() < 0.01);
}

#[test]
fn section_23_worked_example() {
    // "if we want to make a module of T = 10⁶, we need L = 2 … rather than
    // using one gate, we will need to replace each with (3(G−2))² = 441
    // gates and replace each bit with 3² = 81 bits"
    let budget = GateBudget::NONLOCAL_NO_INIT;
    let overhead = budget
        .module_overhead(budget.threshold() / 10.0, 1e6)
        .unwrap()
        .unwrap();
    assert_eq!(overhead.level, 2);
    assert_eq!(overhead.gate_factor, 441.0);
    assert_eq!(overhead.size_factor, 81.0);
}

#[test]
fn section_3_local_thresholds() {
    // "ρ₂ = 1/3C(14,2) = 1/273 and ρ₂ = 1/3C(16,2) = 1/360"
    assert!((GateBudget::LOCAL_2D_NO_INIT.threshold() - 1.0 / 273.0).abs() < 1e-15);
    assert!((GateBudget::LOCAL_2D_WITH_INIT.threshold() - 1.0 / 360.0).abs() < 1e-15);
    // "ρ₁ = 1/3C(40,2) = 1/2340 (or ρ₁ = 1/2109 …)"
    assert!((GateBudget::LOCAL_1D_WITH_INIT.threshold() - 1.0 / 2340.0).abs() < 1e-15);
    assert!((GateBudget::LOCAL_1D_NO_INIT.threshold() - 1.0 / 2109.0).abs() < 1e-15);
    // "approximately 0.4%" for the 2D no-init threshold.
    assert!((GateBudget::LOCAL_2D_NO_INIT.threshold() - 0.004).abs() < 4e-4);
}

#[test]
fn section_33_table_2() {
    let rows = table2();
    let paper = [
        (0u32, 1u32, 0.13),
        (1, 3, 0.36),
        (2, 9, 0.60),
        (3, 27, 0.77),
        (4, 81, 0.88),
        (5, 243, 0.94),
    ];
    for (row, (k, width, ratio)) in rows.iter().zip(paper) {
        assert_eq!(row.k, k);
        assert_eq!(row.width, width);
        assert!(
            (row.ratio - ratio).abs() < 0.005,
            "k={k}: {:.4} vs {ratio}",
            row.ratio
        );
    }
    // abstract: "an error threshold only 23% less than the full 2D case".
    assert!((1.0 - rows[3].ratio - 0.23).abs() < 0.005);
}

#[test]
fn section_4_entropy_constants() {
    // κ = 2√(7/8) + (7/8)log₂7.
    assert!((entropy::kappa() - 4.327).abs() < 1e-3);
    // "if g = 10⁻², and E = 11, we have L ≤ 2.3".
    assert!((entropy::max_level_constant_entropy(1e-2, 11.0) - 2.3).abs() < 0.02);
    // Footnote 4: NAND at 3/2 bits, optimal, achieved by MAJ⁻¹.
    let (optimal, _) = entropy::optimal_nand_dissipation();
    assert!((optimal - 1.5).abs() < 1e-12);
    assert!((entropy::nand_via_maj_inv().reset_joint_entropy - 1.5).abs() < 1e-12);
}

#[test]
fn section_32_one_d_counts() {
    use reversible_ft::locality::prelude::*;
    use reversible_ft::revsim::prelude::*;
    // "The error correction circuit requires six MAJ gates, nine SWAPs …
    // four SWAP3 gates and one SWAP … a total of 11 gates or 13 gates".
    let (c, _, _) = build_recovery_1d();
    assert_eq!(c.len(), E_LOCAL_1D_WITH_INIT);
    assert_eq!(E_LOCAL_1D_WITH_INIT, 13);
    assert_eq!(E_LOCAL_1D_NO_INIT, 11);
    let stats = c.stats();
    assert_eq!(stats.maj_family(), 6);
    assert_eq!(stats.count(OpKind::Swap3), 4);
    assert_eq!(stats.count(OpKind::Swap), 1);
    // "Interleaving b0 and b1 requires 8 + 7 + 6 SWAPs … b2 requires
    // 10 + 8 + 6 … a total of 45 SWAPs".
    let tiles = [Tile1D::new(0), Tile1D::new(9), Tile1D::new(18)];
    let mut scratch = Circuit::new(27);
    let (cost, _) = interleave_1d(&mut scratch, &tiles);
    assert_eq!(cost.per_move, vec![8, 7, 6, 10, 8, 6]);
    assert_eq!(cost.total_swaps, 45);
}

#[test]
fn section_31_two_d_swap_counts() {
    use reversible_ft::locality::prelude::*;
    use reversible_ft::revsim::prelude::*;
    let gate = Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    };
    // "Interleaving three logical bits parallel to the logical line
    // requires nine SWAP gates" — 4 SWAP3 + 1 SWAP per direction.
    let par = build_cycle_2d(&gate, InterleaveScheme::Parallel);
    assert_eq!(par.circuit.stats().count(OpKind::Swap3), 8);
    assert_eq!(par.circuit.stats().count(OpKind::Swap), 2);
    // "Interleaving … perpendicular to the logic line requires 12 SWAP
    // gates" — 6 SWAP3 per direction.
    let perp = build_cycle_2d(&gate, InterleaveScheme::Perpendicular);
    assert_eq!(perp.circuit.stats().count(OpKind::Swap3), 12);
    assert_eq!(perp.circuit.stats().count(OpKind::Swap), 0);
}

#[test]
fn unprotected_module_limit() {
    // "Without any error correction, modules larger than 1,000 gates will
    // almost certainly be faulty" at g = ρ/10 ≈ 10⁻³.
    let g = GateBudget::NONLOCAL_NO_INIT.threshold() / 10.0;
    let p_fail_1000 = 1.0 - (1.0 - g).powi(1000);
    assert!(
        p_fail_1000 > 0.6,
        "1000-gate module failure prob {p_fail_1000}"
    );
}
