//! Cross-crate integration: logical circuits through the FT compiler,
//! local layouts through the exhaustive checker, Monte-Carlo through the
//! analysis harness — the full pipeline of the reproduction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reversible_ft::analysis::prelude::*;
use reversible_ft::core::prelude::*;
use reversible_ft::locality::prelude::*;
use reversible_ft::revsim::permutation::Permutation;
use reversible_ft::revsim::prelude::*;

fn toffoli() -> Gate {
    Gate::Toffoli {
        controls: [w(0), w(1)],
        target: w(2),
    }
}

#[test]
fn random_logical_programs_compile_and_run_exactly() {
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..10 {
        let n = 4usize;
        let mut logical = Circuit::new(n);
        for _ in 0..rng.random_range(1..6) {
            let mut wires: Vec<u32> = (0..n as u32).collect();
            for i in (1..wires.len()).rev() {
                wires.swap(i, rng.random_range(0..=i));
            }
            match rng.random_range(0..3) {
                0 => logical.maj(w(wires[0]), w(wires[1]), w(wires[2])),
                1 => logical.toffoli(w(wires[0]), w(wires[1]), w(wires[2])),
                _ => logical.cnot(w(wires[0]), w(wires[1])),
            };
        }
        let perm = Permutation::of_circuit(&logical).unwrap();
        let program = FtBuilder::compile(1, &logical).unwrap();
        for input in 0..(1u64 << n) {
            let mut s = program.encode(&BitState::from_u64(input, n));
            program.circuit().run(&mut s);
            assert_eq!(program.decode(&s).to_u64(), perm.apply(input));
        }
    }
}

#[test]
fn architecture_error_ordering_under_noise() {
    // At a fixed g, the cycle error rate must order 1D ≥ 2D ≥ non-local
    // (more ops per codeword = more exposure), matching §3's thresholds.
    // g is chosen large enough that a few thousand trials resolve the gap.
    let g = 1.0 / 60.0;
    let noise = UniformNoise::new(g);
    let trials = 12_000;

    let nonlocal = transversal_cycle(&toffoli());
    let d2 = build_cycle_2d(&toffoli(), InterleaveScheme::Perpendicular).to_cycle_spec(&toffoli());
    let d1 = build_cycle_1d(&toffoli()).to_cycle_spec(&toffoli());

    let e_nl = estimate_cycle_error(
        &nonlocal,
        &noise,
        &McOptions::new(trials).seed(1).threads(4),
    );
    let e_2d = estimate_cycle_error(&d2, &noise, &McOptions::new(trials).seed(2).threads(4));
    let e_1d = estimate_cycle_error(&d1, &noise, &McOptions::new(trials).seed(3).threads(4));

    assert!(
        e_1d.rate > e_2d.rate * 0.9,
        "1D {} should be ≥ 2D {}",
        e_1d.rate,
        e_2d.rate
    );
    assert!(
        e_2d.rate > e_nl.rate * 0.9,
        "2D {} should be ≥ non-local {}",
        e_2d.rate,
        e_nl.rate
    );
}

#[test]
fn below_threshold_protection_beats_bare_execution() {
    let g = 1.0 / 500.0;
    let mc = ConcatMc::new(1, toffoli(), 2);
    let est = mc.estimate(
        &UniformNoise::new(g),
        &McOptions::new(30_000).seed(5).threads(4),
    );
    let bare = unprotected_error(g, 2);
    assert!(
        est.rate < bare,
        "protected {} should beat bare {}",
        est.rate,
        bare
    );
}

#[test]
fn routed_ft_cycle_remains_correct() {
    // Route the non-local §2.2 cycle onto a line with the generic router:
    // semantics preserved, all gates local.
    let spec = transversal_cycle(&toffoli());
    let (routed, stats) = route_line(spec.circuit());
    assert!(
        stats.elementary_swaps() > 0,
        "the cycle has remote ops to route"
    );
    assert!(Lattice::line(routed.n_wires())
        .check_circuit(&routed)
        .is_local());
    // Noiseless correctness through the routed circuit.
    for input in 0..8u64 {
        let mut s = spec.encode_input(input);
        routed.run(&mut s);
        assert_eq!(spec.decode_output(&s), spec.logical().apply(input));
    }
}

#[test]
fn level_two_survives_more_noise_than_level_one() {
    let g = 1.0 / 165.0; // exactly the analytic threshold
    let noise = UniformNoise::new(g);
    let l1 =
        ConcatMc::new(1, toffoli(), 2).estimate(&noise, &McOptions::new(20_000).seed(8).threads(4));
    let l2 =
        ConcatMc::new(2, toffoli(), 2).estimate(&noise, &McOptions::new(5_000).seed(9).threads(4));
    assert!(
        l2.rate < l1.rate,
        "at ρ, level 2 ({}) should still beat level 1 ({})",
        l2.rate,
        l1.rate
    );
}

#[test]
fn entropy_measurement_tracks_fault_rate() {
    let gate = toffoli();
    let program = {
        let mut b = FtBuilder::new(1, 3);
        b.apply(&gate).apply(&gate);
        b.finish()
    };
    let input = program.encode(&BitState::zeros(3));
    let h_lo = measure_reset_entropy(
        program.circuit(),
        &input,
        &UniformNoise::new(1e-3),
        8_000,
        1,
    )
    .bits_per_run;
    let h_hi = measure_reset_entropy(
        program.circuit(),
        &input,
        &UniformNoise::new(5e-2),
        8_000,
        1,
    )
    .bits_per_run;
    assert!(
        h_hi > h_lo * 5.0,
        "entropy must grow with g: {h_lo} vs {h_hi}"
    );
}

#[test]
fn decode_trees_follow_multi_cycle_rotations() {
    // 5 cycles at level 2: data positions rotate at two levels; the
    // decode trees must still point at the right wires.
    let mut b = FtBuilder::new(2, 3);
    for _ in 0..5 {
        b.apply(&toffoli());
    }
    let program = b.finish();
    let mut logical = Circuit::new(3);
    for _ in 0..5 {
        logical.toffoli(w(0), w(1), w(2));
    }
    let perm = Permutation::of_circuit(&logical).unwrap();
    for input in [0u64, 0b011, 0b111] {
        let mut s = program.encode(&BitState::from_u64(input, 3));
        program.circuit().run(&mut s);
        assert_eq!(program.decode(&s).to_u64(), perm.apply(input));
    }
}
