//! # reversible-ft — fault-tolerant reversible logic
//!
//! Facade crate for the reproduction of *“Reversible Fault-Tolerant Logic”*
//! (P. O. Boykin & V. P. Roychowdhury, DSN 2005, arXiv:cs/0504010).
//!
//! The implementation lives in four member crates, re-exported here:
//!
//! - [`revsim`] — the noisy reversible gate-array simulator (substrate);
//! - [`core`] — the paper's contribution: MAJ-gate multiplexing, the
//!   Figure 2 recovery circuit, concatenation, thresholds and entropy;
//! - [`locality`] — §3's nearest-neighbour 2D and 1D schemes;
//! - [`analysis`] — Monte-Carlo harness and the experiment reproductions.
//!
//! See `examples/` for runnable walkthroughs (start with
//! `examples/quickstart.rs`) and `crates/bench/src/bin/repro.rs` for the
//! binary that regenerates every table and figure in the paper.

#![warn(missing_docs)]

pub use rft_analysis as analysis;
pub use rft_core as core;
pub use rft_locality as locality;
pub use rft_revsim as revsim;
