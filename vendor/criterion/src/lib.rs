//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this shim provides the
//! surface the workspace's benches use — `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — with
//! a simple adaptive wall-clock measurement loop instead of criterion's
//! full statistical machinery.
//!
//! Environment knobs:
//!
//! - `CRITERION_SAMPLE_MS` — per-sample target in milliseconds (default 40);
//! - `CRITERION_JSON` — path of a JSON-lines file to append results to
//!   (`{"group":…,"bench":…,"ns_per_iter":…,"throughput_elems":…}`).

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark throughput annotation (reported alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    ns_per_iter: f64,
    iters_measured: u64,
}

impl Bencher {
    /// Measures `routine`, running it enough times for a stable estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-batch calibration.
        let calibrate_start = Instant::now();
        black_box(routine());
        let single = calibrate_start.elapsed().max(Duration::from_nanos(1));
        let target = sample_target();
        let batch = (target.as_nanos() / single.as_nanos()).clamp(1, 1_000_000_000) as u64;

        // A few batches; keep the fastest (least-noise) estimate.
        let samples = 3;
        let mut best = f64::INFINITY;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total_iters += batch;
            let ns = elapsed.as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.ns_per_iter = best;
        self.iters_measured = total_iters;
    }
}

fn sample_target() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40u64);
    Duration::from_millis(ms)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench("", name, None, f);
        self
    }
}

/// A group of related benchmarks (see [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's sampling is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim's measurement time is env-driven.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_bench(&self.name, &id.to_string(), self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&self.name, &id.to_string(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        ns_per_iter: f64::NAN,
        iters_measured: 0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let mut line = format!(
        "bench {label:<48} {:>14} ns/iter ({} iters)",
        format_ns(bencher.ns_per_iter),
        bencher.iters_measured
    );
    let mut throughput_elems = None;
    if let Some(Throughput::Elements(n)) = throughput {
        let per_sec = n as f64 * 1e9 / bencher.ns_per_iter;
        line.push_str(&format!("  [{} elem/s]", format_rate(per_sec)));
        throughput_elems = Some(n);
    }
    println!("{line}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        append_json(&path, group, name, bencher.ns_per_iter, throughput_elems);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.1}")
    } else {
        format!("{ns:.2}")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

fn append_json(path: &str, group: &str, name: &str, ns: f64, elems: Option<u64>) {
    use std::io::Write;
    let elems_field = match elems {
        Some(n) => format!(",\"throughput_elems\":{n}"),
        None => String::new(),
    };
    let line = format!(
        "{{\"group\":\"{group}\",\"bench\":\"{name}\",\"ns_per_iter\":{ns:.2}{elems_field}}}\n"
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = file.write_all(line.as_bytes());
    }
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
