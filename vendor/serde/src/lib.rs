//! Vendored, dependency-free serde shim.
//!
//! The build environment has no crates.io access, so this crate provides a
//! self-describing value model ([`Value`]) plus [`Serialize`] /
//! [`Deserialize`] traits and `#[derive(Serialize, Deserialize)]` macros
//! (re-exported from the sibling `serde_derive` shim). The derive emits
//! serde's externally-tagged enum representation, so JSON produced by the
//! companion `serde_json` shim matches upstream serde's default layout
//! (e.g. `{"Not":99}` for a newtype variant).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A free-form error.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X, found Y".
    pub fn expected(expected: &str, found: &str) -> Self {
        DeError {
            message: format!("expected {expected}, found {found}"),
        }
    }

    /// An unknown externally-tagged enum variant.
    pub fn unknown_variant(variant: &str, enum_name: &str) -> Self {
        DeError {
            message: format!("unknown variant `{variant}` of {enum_name}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the shim's data model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs a value from the shim's data model.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// -- helpers used by the generated derive code ------------------------------

/// Wraps a value in serde's externally-tagged variant map.
pub fn variant(name: &str, value: Value) -> Value {
    Value::Map(vec![(name.to_string(), value)])
}

/// Views `v` as a map (derive helper).
///
/// # Errors
///
/// Returns [`DeError`] if `v` is not a map.
pub fn as_map<'v>(v: &'v Value, what: &str) -> Result<&'v [(String, Value)], DeError> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(DeError::expected(&format!("map for {what}"), other.kind())),
    }
}

/// Views `v` as a sequence of exactly `len` items (derive helper).
///
/// # Errors
///
/// Returns [`DeError`] on a non-sequence or wrong length.
pub fn as_seq<'v>(v: &'v Value, len: usize, what: &str) -> Result<&'v [Value], DeError> {
    match v {
        Value::Seq(s) if s.len() == len => Ok(s),
        Value::Seq(s) => Err(DeError::custom(format!(
            "expected {len} elements for {what}, found {}",
            s.len()
        ))),
        other => Err(DeError::expected(
            &format!("sequence for {what}"),
            other.kind(),
        )),
    }
}

/// Looks up a struct field in a map (derive helper).
///
/// # Errors
///
/// Returns [`DeError`] if the field is missing.
pub fn map_get<'m>(m: &'m [(String, Value)], key: &str, what: &str) -> Result<&'m Value, DeError> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}` of {what}")))
}

// -- primitive impls --------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    other => Err(DeError::expected("unsigned integer", other.kind())),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    other => Err(DeError::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(DeError::expected("number", other.kind())),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other.kind())),
        }
    }
}

// -- container impls --------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other.kind())),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = as_seq(v, N, "array")?;
        let items: Result<Vec<T>, DeError> = s.iter().map(T::from_value).collect();
        items?
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = as_seq(v, $len, "tuple")?;
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    /// Map keys must serialize to strings (e.g. unit enum variants), as in
    /// JSON-targeting serde.
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => panic!("map key must serialize to a string, got {}", other.kind()),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = as_map(v, "map")?;
        m.iter()
            .map(|(k, v)| {
                let key = K::from_value(&Value::Str(k.clone()))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let a = [4u8, 5, 6];
        assert_eq!(<[u8; 3]>::from_value(&a.to_value()).unwrap(), a);
        let t = (1u32, 2u64);
        assert_eq!(<(u32, u64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u8> = Some(9);
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);
        let n: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&n.to_value()).unwrap(), n);
    }

    #[test]
    fn errors_are_descriptive() {
        let err = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected"));
    }
}
