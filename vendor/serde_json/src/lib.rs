//! Vendored JSON serializer/deserializer over the serde shim's [`Value`]
//! data model. Provides the `to_string` / `to_string_pretty` / `from_str`
//! subset of the real `serde_json` API.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching the upstream crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !pairs.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

/// Writes a float so it parses back as a float (Rust's `{:?}` always keeps
/// a `.0`, exponent or special marker) — non-finite values become `null`
/// as in upstream serde_json.
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn float_integral_values_stay_floats() {
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.0);
    }

    #[test]
    fn strings_escape() {
        let original = "a\"b\\c\nd\te\u{1F600}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let tuple = (1u8, 2u8, 3u8);
        assert_eq!(
            from_str::<(u8, u8, u8)>(&to_string(&tuple).unwrap()).unwrap(),
            tuple
        );
    }

    #[test]
    fn whitespace_and_pretty() {
        let v = vec![vec![1u8], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
        assert_eq!(from_str::<Vec<u8>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
