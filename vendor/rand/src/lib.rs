//! Vendored, dependency-free subset of the `rand` crate (0.9 API).
//!
//! The build environment has no network access to crates.io, so this shim
//! provides exactly the surface the workspace uses: [`RngCore`], [`Rng`]
//! (`random`, `random_range`, `random_bool`), [`SeedableRng`] and
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! Distributions match the upstream semantics the workspace relies on:
//! `random::<f64>()` is uniform in `[0, 1)` with 53 bits of precision, and
//! `random_range` uses rejection sampling for unbiased integer ranges.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng` without parameters
/// (the shim's analogue of `StandardUniform: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 significant bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 significant bits.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling from an unbiased integer span of width `span`
/// (`span == 0` means the full 2⁶⁴ range). Uses Lemire-style widening
/// multiplication with a rejection zone.
#[inline]
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Widening multiply maps next_u64() into [0, span); reject the biased
    // low zone so every value is exactly equally likely.
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// Range argument accepted by [`Rng::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_span(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64; // hi - lo + 1, 0 encodes "full"
                lo + sample_span(rng, span.wrapping_add(1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(sample_span(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = ((hi as i64).wrapping_sub(lo as i64) as u64).wrapping_add(1);
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`bool`: fair coin; floats: uniform `[0, 1)`; ints: full range).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    ///
    /// Matches the role of `rand::rngs::SmallRng`: deterministic for a
    /// given seed, statistically strong enough for Monte-Carlo work.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.random_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(3..=5u32);
            assert!((3..=5).contains(&v));
        }
        for _ in 0..100 {
            let v = rng.random_range(-3..3i32);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_600..5_400).contains(&heads), "heads {heads}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = SmallRng::seed_from_u64(6);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
