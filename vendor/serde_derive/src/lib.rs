//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The build environment has no crates.io access, so this derive is written
//! directly against `proc_macro` (no `syn`/`quote`). It supports the shapes
//! the workspace actually uses: non-generic structs (named, tuple, unit)
//! and enums whose variants are unit, newtype, tuple or struct-like —
//! serialized in serde's externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of one parsed field list.
enum Fields {
    /// Named fields `{ a: T, b: U }`.
    Named(Vec<String>),
    /// Tuple fields `(T, U)`, by count.
    Tuple(usize),
    /// No fields at all.
    Unit,
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = serialize_fields_expr(fields, &FieldAccess::SelfDot);
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (variant, fields) in variants {
                arms.push_str(&serialize_variant_arm(name, variant, fields));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Serialize) generated invalid Rust")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = deserialize_fields_expr(name, "", fields, "v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),"
                    )),
                    _ => {
                        let body = deserialize_fields_expr(name, variant, fields, "inner");
                        data_arms.push_str(&format!("\"{variant}\" => {{ {body} }},"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (tag, inner) = &m[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::expected(\"variant of {name}\", v.kind())),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("derive(Deserialize) generated invalid Rust")
}

/// How serialization code reaches the fields of the value.
enum FieldAccess {
    /// `&self.<field>` (structs).
    SelfDot,
    /// Bound pattern identifiers (enum match arms).
    Bound,
}

/// Expression serializing `fields` into a `::serde::Value`.
fn serialize_fields_expr(fields: &Fields, access: &FieldAccess) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let mut pairs = String::new();
            for n in names {
                let expr = match access {
                    FieldAccess::SelfDot => format!("&self.{n}"),
                    FieldAccess::Bound => n.clone(),
                };
                pairs.push_str(&format!(
                    "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({expr})),"
                ));
            }
            format!("::serde::Value::Map(::std::vec![{pairs}])")
        }
        Fields::Tuple(n) => {
            let expr_for = |i: usize| match access {
                FieldAccess::SelfDot => format!("&self.{i}"),
                FieldAccess::Bound => format!("f{i}"),
            };
            if *n == 1 {
                format!("::serde::Serialize::to_value({})", expr_for(0))
            } else {
                let mut items = String::new();
                for i in 0..*n {
                    items.push_str(&format!("::serde::Serialize::to_value({}),", expr_for(i)));
                }
                format!("::serde::Value::Seq(::std::vec![{items}])")
            }
        }
    }
}

/// One `match self` arm serializing an enum variant (externally tagged).
fn serialize_variant_arm(name: &str, variant: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "{name}::{variant} => ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
        ),
        Fields::Named(names) => {
            let pattern = names.join(", ");
            let body = serialize_fields_expr(fields, &FieldAccess::Bound);
            format!("{name}::{variant} {{ {pattern} }} => ::serde::variant(\"{variant}\", {body}),")
        }
        Fields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let pattern = binders.join(", ");
            let body = serialize_fields_expr(fields, &FieldAccess::Bound);
            format!("{name}::{variant}({pattern}) => ::serde::variant(\"{variant}\", {body}),")
        }
    }
}

/// Expression deserializing `fields` from the `::serde::Value` named by
/// `source` into `name::variant` (or plain `name` when `variant` is empty).
fn deserialize_fields_expr(name: &str, variant: &str, fields: &Fields, source: &str) -> String {
    let ctor = if variant.is_empty() {
        name.to_string()
    } else {
        format!("{name}::{variant}")
    };
    let what = if variant.is_empty() {
        name.to_string()
    } else {
        format!("{name}::{variant}")
    };
    match fields {
        Fields::Unit => format!("{{ let _ = {source}; ::std::result::Result::Ok({ctor}) }}"),
        Fields::Named(names) => {
            let mut inits = String::new();
            for n in names {
                inits.push_str(&format!(
                    "{n}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{n}\", \"{what}\")?)?,"
                ));
            }
            format!(
                "{{ let m = ::serde::as_map({source}, \"{what}\")?;\n\
                    ::std::result::Result::Ok({ctor} {{ {inits} }}) }}"
            )
        }
        Fields::Tuple(n) => {
            if *n == 1 {
                format!(
                    "::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value({source})?))"
                )
            } else {
                let mut items = String::new();
                for i in 0..*n {
                    items.push_str(&format!("::serde::Deserialize::from_value(&s[{i}])?,"));
                }
                format!(
                    "{{ let s = ::serde::as_seq({source}, {n}, \"{what}\")?;\n\
                        ::std::result::Result::Ok({ctor}({items})) }}"
                )
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "serde shim derive does not support generic type `{name}`"
        );
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive supports struct/enum, found `{other}`"),
    }
}

/// Advances `i` past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Field names of `{ a: T, b: U }`, skipping attributes, visibility and the
/// type tokens (commas inside `<...>` generic arguments are ignored).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        names.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Number of fields in a tuple-struct/tuple-variant parenthesis group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => fields += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        fields -= 1;
    }
    fields
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}
