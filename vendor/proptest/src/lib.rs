//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this shim implements
//! the surface the workspace's property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_filter` / `boxed`,
//! range and tuple strategies, [`prop_oneof!`], `prop::collection::vec`,
//! [`any`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (failing inputs are reported
//! verbatim), and the case count defaults to 96 (override with the
//! `PROPTEST_CASES` environment variable).

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Attempts to draw one value; `None` means a filter rejected it.
        fn try_sample(&self, rng: &mut SmallRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values for which `pred` returns false.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                _whence: whence,
                pred,
            }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(move |rng| self.try_sample(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn try_sample(&self, rng: &mut SmallRng) -> Option<U> {
            self.inner.try_sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        _whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn try_sample(&self, rng: &mut SmallRng) -> Option<S::Value> {
            self.inner.try_sample(rng).filter(|v| (self.pred)(v))
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    #[allow(clippy::type_complexity)]
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut SmallRng) -> Option<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn try_sample(&self, rng: &mut SmallRng) -> Option<T> {
            (self.0)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (the [`prop_oneof!`]
    /// backend).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of alternatives; each is picked with equal
        /// probability.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn try_sample(&self, rng: &mut SmallRng) -> Option<T> {
            let arm = rng.random_range(0..self.arms.len());
            self.arms[arm].try_sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn try_sample(&self, rng: &mut SmallRng) -> Option<$t> {
                    Some(rng.random_range(self.clone()))
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn try_sample(&self, rng: &mut SmallRng) -> Option<Self::Value> {
                    Some(($(self.$idx.try_sample(rng)?,)+))
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }

    /// Strategy for types with a canonical "any value" distribution
    /// (see [`any`](crate::any)).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    /// Types usable with [`any`](crate::any).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.random()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.random::<u8>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.random::<u32>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.random::<u64>()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn try_sample(&self, rng: &mut SmallRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }
}

/// Collection strategies, re-exported as `prop::collection`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy producing `Vec`s with lengths drawn from `len`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors of values from `element` with a length in
        /// `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn try_sample(&self, rng: &mut SmallRng) -> Option<Vec<S::Value>> {
                let n = rng.random_range(self.len.clone());
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    // Give each element a few retries before rejecting the
                    // whole collection.
                    let mut value = None;
                    for _ in 0..16 {
                        if let Some(v) = self.element.try_sample(rng) {
                            value = Some(v);
                            break;
                        }
                    }
                    out.push(value?);
                }
                Some(out)
            }
        }
    }
}

/// Returns the canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Test-runner plumbing used by the macros.
pub mod runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Outcome of one generated test case.
    pub enum CaseResult {
        /// The case passed.
        Pass,
        /// A `prop_assume!` or strategy filter rejected the case.
        Reject,
        /// The case failed with a message.
        Fail(String),
    }

    /// Number of cases to run per property (from `PROPTEST_CASES`, default
    /// 96).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(96)
    }

    /// Runs `case` up to the configured number of passing cases,
    /// with a bounded rejection budget.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or too many cases are rejected.
    pub fn run<F: FnMut(&mut SmallRng) -> CaseResult>(name: &str, mut case: F) {
        // Deterministic per-test seed (FNV-1a over the test name).
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(x) = extra.parse::<u64>() {
                seed ^= x;
            }
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let cases = case_count();
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = cases.saturating_mul(64).max(4096);
        while passed < cases {
            match case(&mut rng) {
                CaseResult::Pass => passed += 1,
                CaseResult::Reject => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest {name}: too many rejected cases ({rejected})"
                    );
                }
                CaseResult::Fail(message) => {
                    panic!("proptest {name} failed after {passed} passing cases: {message}")
                }
            }
        }
    }
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(stringify!($name), |__rng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::try_sample(
                            &($strat), __rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None =>
                                return $crate::runner::CaseResult::Reject,
                        };
                    )*
                    let __case_desc = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}; ",)*),
                        $(&$arg,)*
                    );
                    let __case = move || -> $crate::runner::CaseResult {
                        $body
                        $crate::runner::CaseResult::Pass
                    };
                    match __case() {
                        $crate::runner::CaseResult::Fail(msg) => $crate::runner::CaseResult::Fail(
                            ::std::format!("{msg}\n  case: {}", __case_desc)
                        ),
                        other => other,
                    }
                });
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return $crate::runner::CaseResult::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::runner::CaseResult::Fail(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return $crate::runner::CaseResult::Fail(
                ::std::format!("assertion failed: `{:?}` == `{:?}`", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return $crate::runner::CaseResult::Fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}", l, r, ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return $crate::runner::CaseResult::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            ));
        }
    }};
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::runner::CaseResult::Reject;
        }
    };
}
